//! The OCI container lifecycle as a single shared state machine.
//!
//! Both execution paths in the stack — the crun-embedded runtime
//! (`runtimes::LowLevelRuntime`) and the runwasi shim path inside
//! `containerd` — previously tracked container state with their own ad-hoc
//! enums and `if state != Created` checks, which is how asymmetric teardown
//! creeps in: one path forgets to reject a double-start, the other forgets
//! that delete-after-OOM is legal. This module is the one place transition
//! legality lives:
//!
//! ```text
//!            ┌──────────┐
//!            │ Created  │──────────────┬──────────────┐
//!            └────┬─────┘              │              │ setup error
//!                 │ start              │              │
//!            ┌────▼─────┐             │         ┌────▼─────┐
//!            │ Running  │──────────────┤ crash ──▶│  Failed  │
//!            └──┬─┬─────┘   kill/exit  │          └────┬─────┘
//!        SIGTERM│ │ memory.max breach  │               ▲ SIGKILL
//!   ┌───────────▼┐│              ┌────▼─────┐    ┌────┴────────┐
//!   │ Terminating ├┼─────────────▶│ Stopped  │◀───┤ Terminating │
//!   └─────────────┘│ exits in     └────┬─────┘    │ grace over  │
//!            ┌────▼──────┐ grace       │          └─────────────┘
//!            │ OomKilled │             │ delete
//!            └────┬──────┘             │
//!                 │ delete        ┌───▼──────┐
//!                 └──────────────▶│ Deleted  │   (terminal)
//!                                 └──────────┘
//! ```
//!
//! `Stopped` is the orderly exit, `Failed` is an error exit (setup failure
//! or crash), `OomKilled` is the kernel enforcing `memory.max`. All three
//! are "down" states that only `delete` can leave. `Terminating` is the
//! grace-period window between SIGTERM and the outcome: the guest either
//! exits in time (`Stopped`) or ignores the signal and is hard-killed when
//! the grace period lapses (`Failed`). A terminating container is still up
//! — it cannot be deleted or restarted in place. Every legal transition
//! strictly advances the state's rank, so no sequence of legal operations
//! can revisit an earlier state — the invariant the property test in this
//! module checks with random operation sequences.

use crate::error::{KernelError, KernelResult};

/// The OCI lifecycle states plus the two fault exits. `Deleted` is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LifecycleState {
    Created,
    Running,
    /// SIGTERM delivered, grace period running. Still "up": the container
    /// may exit orderly (`Stopped`) or be hard-killed (`Failed`), but it
    /// cannot be deleted or resurrected to `Running`.
    Terminating,
    Stopped,
    /// Error exit: setup failure before the first instruction, or a crash
    /// while running. Only `delete` leaves this state.
    Failed,
    /// The kernel killed the container enforcing `memory.max`. Only
    /// `delete` leaves this state.
    OomKilled,
    Deleted,
}

impl LifecycleState {
    pub const ALL: [LifecycleState; 7] = [
        LifecycleState::Created,
        LifecycleState::Running,
        LifecycleState::Terminating,
        LifecycleState::Stopped,
        LifecycleState::Failed,
        LifecycleState::OomKilled,
        LifecycleState::Deleted,
    ];

    /// Rank in lifecycle order; legal transitions strictly increase it.
    /// The three "down" states share a rank — there is no legal edge among
    /// them, so strictness holds.
    pub fn rank(self) -> u8 {
        match self {
            LifecycleState::Created => 0,
            LifecycleState::Running => 1,
            LifecycleState::Terminating => 2,
            LifecycleState::Stopped | LifecycleState::Failed | LifecycleState::OomKilled => 3,
            LifecycleState::Deleted => 4,
        }
    }

    /// A state the container cannot leave except via `delete`.
    pub fn is_down(self) -> bool {
        matches!(self, LifecycleState::Stopped | LifecycleState::Failed | LifecycleState::OomKilled)
    }
}

/// Is `from -> to` a legal OCI transition?
pub const fn legal(from: LifecycleState, to: LifecycleState) -> bool {
    use LifecycleState::*;
    matches!(
        (from, to),
        (Created, Running)
            | (Created, Stopped)
            | (Created, Failed)
            | (Running, Terminating)
            | (Running, Stopped)
            | (Running, Failed)
            | (Running, OomKilled)
            | (Terminating, Stopped)
            | (Terminating, Failed)
            | (Stopped, Deleted)
            | (Failed, Deleted)
            | (OomKilled, Deleted)
    )
}

/// A container's position in the lifecycle. Starts at `Created`; every state
/// change goes through [`Lifecycle::transition`] (strict) or the idempotent
/// teardown helpers [`Lifecycle::stop`] / [`Lifecycle::delete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lifecycle {
    state: LifecycleState,
}

impl Default for Lifecycle {
    fn default() -> Self {
        Lifecycle::new()
    }
}

impl Lifecycle {
    pub fn new() -> Lifecycle {
        Lifecycle { state: LifecycleState::Created }
    }

    pub fn state(&self) -> LifecycleState {
        self.state
    }

    pub fn is(&self, s: LifecycleState) -> bool {
        self.state == s
    }

    /// Strict transition: errors (leaving the state unchanged) unless
    /// `from -> to` is in the legal set.
    pub fn transition(&mut self, to: LifecycleState, what: &str) -> KernelResult<()> {
        if legal(self.state, to) {
            self.state = to;
            Ok(())
        } else {
            Err(KernelError::InvalidState(format!(
                "{what}: illegal lifecycle transition {:?} -> {to:?}",
                self.state
            )))
        }
    }

    /// Begin graceful termination: a `Running` container moves to
    /// `Terminating` (SIGTERM delivered, grace period started) and the call
    /// reports `true`. Any other state — including an already-terminating
    /// container — is left untouched, so re-delivering SIGTERM mid-grace is
    /// a no-op rather than an error.
    pub fn begin_termination(&mut self) -> bool {
        match self.state {
            LifecycleState::Running => {
                self.state = LifecycleState::Terminating;
                true
            }
            _ => false,
        }
    }

    /// Idempotent stop for teardown paths: advances `Created`/`Running`/
    /// `Terminating` to `Stopped` and reports whether the caller must
    /// actually kill the process. Containers that are already down
    /// (`Stopped`, `Failed`, `OomKilled`) or `Deleted` need no work.
    pub fn stop(&mut self) -> bool {
        match self.state {
            LifecycleState::Created | LifecycleState::Running | LifecycleState::Terminating => {
                self.state = LifecycleState::Stopped;
                true
            }
            LifecycleState::Stopped
            | LifecycleState::Failed
            | LifecycleState::OomKilled
            | LifecycleState::Deleted => false,
        }
    }

    /// Record a fault exit: `Created`/`Running`/`Terminating` containers
    /// move to `Failed` (or `OomKilled` when `oom` is set — only legal while
    /// `Running`, since a terminating guest is hard-killed, not OOM-billed);
    /// already-down containers keep their state. Reports whether the caller
    /// must reap the process.
    pub fn fail(&mut self, oom: bool) -> bool {
        match self.state {
            LifecycleState::Created | LifecycleState::Running => {
                self.state = if oom { LifecycleState::OomKilled } else { LifecycleState::Failed };
                true
            }
            LifecycleState::Terminating => {
                self.state = LifecycleState::Failed;
                true
            }
            _ => false,
        }
    }

    /// Idempotent delete: advances any down state (`Stopped`, `Failed`,
    /// `OomKilled`) to `Deleted` and reports whether resources still need
    /// releasing. A second delete is a no-op; deleting a container that is
    /// still up — `Running` or mid-grace-period `Terminating` — is rejected.
    pub fn delete(&mut self, what: &str) -> KernelResult<bool> {
        match self.state {
            s if s.is_down() => {
                self.state = LifecycleState::Deleted;
                Ok(true)
            }
            LifecycleState::Deleted => Ok(false),
            s => Err(KernelError::InvalidState(format!(
                "{what}: cannot delete container in state {s:?} (stop it first)"
            ))),
        }
    }
}

impl PartialEq<LifecycleState> for Lifecycle {
    fn eq(&self, other: &LifecycleState) -> bool {
        self.state == *other
    }
}

impl PartialEq<Lifecycle> for LifecycleState {
    fn eq(&self, other: &Lifecycle) -> bool {
        *self == other.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;

    #[test]
    fn happy_path() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        lc.transition(LifecycleState::Stopped, "c").unwrap();
        lc.transition(LifecycleState::Deleted, "c").unwrap();
        assert_eq!(lc.state(), LifecycleState::Deleted);
    }

    #[test]
    fn created_can_stop_without_running() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Stopped, "c").unwrap();
        assert_eq!(lc, LifecycleState::Stopped);
    }

    #[test]
    fn illegal_transitions_rejected_and_state_unchanged() {
        let mut lc = Lifecycle::new();
        assert!(lc.transition(LifecycleState::Deleted, "c").is_err());
        assert_eq!(lc, LifecycleState::Created);
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.transition(LifecycleState::Created, "c").is_err());
        assert!(lc.transition(LifecycleState::Running, "c").is_err());
        assert!(lc.transition(LifecycleState::Deleted, "c").is_err());
        assert_eq!(lc, LifecycleState::Running);
    }

    #[test]
    fn stop_and_delete_are_idempotent() {
        let mut lc = Lifecycle::new();
        assert!(lc.stop());
        assert!(!lc.stop(), "second stop is a no-op");
        assert!(lc.delete("c").unwrap());
        assert!(!lc.delete("c").unwrap(), "second delete is a no-op");
        assert_eq!(lc, LifecycleState::Deleted);
    }

    #[test]
    fn delete_before_stop_is_rejected() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.delete("c").is_err());
        assert_eq!(lc, LifecycleState::Running);
    }

    #[test]
    fn failed_and_oom_killed_are_down_but_deletable() {
        // Setup failure before start.
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Failed, "c").unwrap();
        assert!(!lc.stop(), "a failed container needs no kill");
        assert!(lc.delete("c").unwrap(), "but its resources still release");
        assert_eq!(lc, LifecycleState::Deleted);

        // OOM kill while running.
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        lc.transition(LifecycleState::OomKilled, "c").unwrap();
        assert!(!lc.stop());
        assert!(lc.delete("c").unwrap());

        // OomKilled is only reachable from Running (the kernel kills a
        // process that is charging memory); Failed is also legal from
        // Created (setup error).
        assert!(!legal(LifecycleState::Created, LifecycleState::OomKilled));
        assert!(!legal(LifecycleState::Stopped, LifecycleState::Failed));
        assert!(!legal(LifecycleState::Failed, LifecycleState::Running), "no restart in place");
    }

    #[test]
    fn fail_helper_routes_to_the_right_down_state() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.fail(true), "first fault exits the process");
        assert_eq!(lc, LifecycleState::OomKilled);
        assert!(!lc.fail(false), "already down: keep the original cause");
        assert_eq!(lc, LifecycleState::OomKilled);

        let mut lc = Lifecycle::new();
        assert!(lc.fail(false));
        assert_eq!(lc, LifecycleState::Failed);
    }

    #[test]
    fn terminating_is_up_until_the_grace_period_resolves() {
        // SIGTERM path: Running -> Terminating, then either an orderly exit
        // within the grace period (Stopped) or a hard kill (Failed).
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.begin_termination());
        assert_eq!(lc, LifecycleState::Terminating);
        assert!(!lc.begin_termination(), "SIGTERM re-delivery is a no-op");

        // Illegal resurrection and premature delete both rejected mid-grace.
        assert!(lc.transition(LifecycleState::Running, "c").is_err());
        assert!(lc.delete("c").is_err(), "Terminating is still up");
        assert_eq!(lc, LifecycleState::Terminating);

        // Orderly exit inside the grace period.
        assert!(lc.stop(), "the guest's exit still needs reaping");
        assert_eq!(lc, LifecycleState::Stopped);
        assert!(!lc.stop());
        assert!(lc.delete("c").unwrap());

        // Grace period lapses: escalation to SIGKILL is a fault exit.
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.begin_termination());
        assert!(lc.fail(false));
        assert_eq!(lc, LifecycleState::Failed);

        // Terminating is only reachable from Running, and never via OOM.
        assert!(!legal(LifecycleState::Created, LifecycleState::Terminating));
        assert!(!legal(LifecycleState::Stopped, LifecycleState::Terminating));
        assert!(!legal(LifecycleState::Terminating, LifecycleState::OomKilled));
        assert!(!LifecycleState::Terminating.is_down());
    }

    #[test]
    fn prop_random_op_sequences_never_reach_an_illegal_state() {
        // Drive the machine with random operations (strict transitions to
        // arbitrary targets plus the idempotent teardown helpers) and check
        // the invariants: state only changes along legal edges, rank never
        // decreases, and rejected operations leave the state untouched.
        prop::check("lifecycle_legality", 400, |g| {
            let mut lc = Lifecycle::new();
            let mut prev = lc.state();
            let n = LifecycleState::ALL.len() as u64;
            let ops = 1 + (g.next_u64() % 24) as usize;
            for _ in 0..ops {
                let before = lc.state();
                match g.next_u64() % 8 {
                    0..=3 => {
                        let target = LifecycleState::ALL[(g.next_u64() % n) as usize];
                        let res = lc.transition(target, "prop");
                        assert_eq!(res.is_ok(), legal(before, target), "{before:?}->{target:?}");
                        if res.is_err() {
                            assert_eq!(lc.state(), before, "failed transition mutated state");
                        }
                    }
                    4 => {
                        let acted = lc.stop();
                        assert_eq!(lc.state() != before, acted);
                        assert!(lc.state() != LifecycleState::Created);
                        if acted {
                            assert_eq!(lc.state(), LifecycleState::Stopped);
                        }
                    }
                    5 => {
                        let oom = g.next_bool();
                        let acted = lc.fail(oom);
                        assert_eq!(lc.state() != before, acted);
                        if acted {
                            // An OOM bill is only legal while Running; a
                            // terminating guest is hard-killed to Failed.
                            let want = if oom && before != LifecycleState::Terminating {
                                LifecycleState::OomKilled
                            } else {
                                LifecycleState::Failed
                            };
                            assert_eq!(lc.state(), want);
                        }
                    }
                    6 => {
                        let acted = lc.begin_termination();
                        assert_eq!(acted, before == LifecycleState::Running);
                        if acted {
                            assert_eq!(lc.state(), LifecycleState::Terminating);
                        } else {
                            assert_eq!(lc.state(), before, "SIGTERM re-delivery mutated state");
                        }
                    }
                    _ => {
                        if let Ok(acted) = lc.delete("prop") {
                            assert_eq!(lc.state() != before, acted);
                            assert_eq!(lc.state(), LifecycleState::Deleted);
                        } else {
                            assert_eq!(lc.state(), before);
                            assert!(!before.is_down(), "delete from a down state cannot fail");
                        }
                    }
                }
                assert!(
                    lc.state().rank() >= prev.rank(),
                    "rank regressed: {prev:?} -> {:?}",
                    lc.state()
                );
                prev = lc.state();
            }
        });
    }
}
