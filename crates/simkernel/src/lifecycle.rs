//! The OCI container lifecycle as a single shared state machine.
//!
//! Both execution paths in the stack — the crun-embedded runtime
//! (`runtimes::LowLevelRuntime`) and the runwasi shim path inside
//! `containerd` — previously tracked container state with their own ad-hoc
//! enums and `if state != Created` checks, which is how asymmetric teardown
//! creeps in: one path forgets to reject a double-start, the other forgets
//! that delete-after-OOM is legal. This module is the one place transition
//! legality lives:
//!
//! ```text
//!            ┌──────────┐
//!            │ Created  │──────────────┐
//!            └────┬─────┘              │   (failed before first
//!                 │ start              │    instruction, or killed)
//!            ┌────▼─────┐              │
//!            │ Running  │──────────────┤
//!            └──────────┘   kill/exit  │
//!                                 ┌────▼─────┐
//!                                 │ Stopped  │
//!                                 └────┬─────┘
//!                                      │ delete
//!                                 ┌────▼─────┐
//!                                 │ Deleted  │   (terminal)
//!                                 └──────────┘
//! ```
//!
//! Every legal transition strictly advances the state's rank, so no sequence
//! of legal operations can revisit an earlier state — the invariant the
//! property test in this module checks with random operation sequences.

use crate::error::{KernelError, KernelResult};

/// The four OCI lifecycle states. `Deleted` is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LifecycleState {
    Created,
    Running,
    Stopped,
    Deleted,
}

impl LifecycleState {
    pub const ALL: [LifecycleState; 4] = [
        LifecycleState::Created,
        LifecycleState::Running,
        LifecycleState::Stopped,
        LifecycleState::Deleted,
    ];

    /// Rank in lifecycle order; legal transitions strictly increase it.
    pub fn rank(self) -> u8 {
        match self {
            LifecycleState::Created => 0,
            LifecycleState::Running => 1,
            LifecycleState::Stopped => 2,
            LifecycleState::Deleted => 3,
        }
    }
}

/// Is `from -> to` a legal OCI transition?
pub const fn legal(from: LifecycleState, to: LifecycleState) -> bool {
    use LifecycleState::*;
    matches!(
        (from, to),
        (Created, Running) | (Created, Stopped) | (Running, Stopped) | (Stopped, Deleted)
    )
}

/// A container's position in the lifecycle. Starts at `Created`; every state
/// change goes through [`Lifecycle::transition`] (strict) or the idempotent
/// teardown helpers [`Lifecycle::stop`] / [`Lifecycle::delete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lifecycle {
    state: LifecycleState,
}

impl Default for Lifecycle {
    fn default() -> Self {
        Lifecycle::new()
    }
}

impl Lifecycle {
    pub fn new() -> Lifecycle {
        Lifecycle { state: LifecycleState::Created }
    }

    pub fn state(&self) -> LifecycleState {
        self.state
    }

    pub fn is(&self, s: LifecycleState) -> bool {
        self.state == s
    }

    /// Strict transition: errors (leaving the state unchanged) unless
    /// `from -> to` is in the legal set.
    pub fn transition(&mut self, to: LifecycleState, what: &str) -> KernelResult<()> {
        if legal(self.state, to) {
            self.state = to;
            Ok(())
        } else {
            Err(KernelError::InvalidState(format!(
                "{what}: illegal lifecycle transition {:?} -> {to:?}",
                self.state
            )))
        }
    }

    /// Idempotent stop for teardown paths: advances `Created`/`Running` to
    /// `Stopped` and reports whether the caller must actually kill the
    /// process. Already-`Stopped`/`Deleted` containers need no work.
    pub fn stop(&mut self) -> bool {
        match self.state {
            LifecycleState::Created | LifecycleState::Running => {
                self.state = LifecycleState::Stopped;
                true
            }
            LifecycleState::Stopped | LifecycleState::Deleted => false,
        }
    }

    /// Idempotent delete: advances `Stopped` to `Deleted` and reports whether
    /// resources still need releasing. A second delete is a no-op; deleting a
    /// container that was never stopped is rejected.
    pub fn delete(&mut self, what: &str) -> KernelResult<bool> {
        match self.state {
            LifecycleState::Stopped => {
                self.state = LifecycleState::Deleted;
                Ok(true)
            }
            LifecycleState::Deleted => Ok(false),
            s => Err(KernelError::InvalidState(format!(
                "{what}: cannot delete container in state {s:?} (stop it first)"
            ))),
        }
    }
}

impl PartialEq<LifecycleState> for Lifecycle {
    fn eq(&self, other: &LifecycleState) -> bool {
        self.state == *other
    }
}

impl PartialEq<Lifecycle> for LifecycleState {
    fn eq(&self, other: &Lifecycle) -> bool {
        *self == other.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;

    #[test]
    fn happy_path() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        lc.transition(LifecycleState::Stopped, "c").unwrap();
        lc.transition(LifecycleState::Deleted, "c").unwrap();
        assert_eq!(lc.state(), LifecycleState::Deleted);
    }

    #[test]
    fn created_can_stop_without_running() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Stopped, "c").unwrap();
        assert_eq!(lc, LifecycleState::Stopped);
    }

    #[test]
    fn illegal_transitions_rejected_and_state_unchanged() {
        let mut lc = Lifecycle::new();
        assert!(lc.transition(LifecycleState::Deleted, "c").is_err());
        assert_eq!(lc, LifecycleState::Created);
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.transition(LifecycleState::Created, "c").is_err());
        assert!(lc.transition(LifecycleState::Running, "c").is_err());
        assert!(lc.transition(LifecycleState::Deleted, "c").is_err());
        assert_eq!(lc, LifecycleState::Running);
    }

    #[test]
    fn stop_and_delete_are_idempotent() {
        let mut lc = Lifecycle::new();
        assert!(lc.stop());
        assert!(!lc.stop(), "second stop is a no-op");
        assert!(lc.delete("c").unwrap());
        assert!(!lc.delete("c").unwrap(), "second delete is a no-op");
        assert_eq!(lc, LifecycleState::Deleted);
    }

    #[test]
    fn delete_before_stop_is_rejected() {
        let mut lc = Lifecycle::new();
        lc.transition(LifecycleState::Running, "c").unwrap();
        assert!(lc.delete("c").is_err());
        assert_eq!(lc, LifecycleState::Running);
    }

    #[test]
    fn prop_random_op_sequences_never_reach_an_illegal_state() {
        // Drive the machine with random operations (strict transitions to
        // arbitrary targets plus the idempotent teardown helpers) and check
        // the invariants: state only changes along legal edges, rank never
        // decreases, and rejected operations leave the state untouched.
        prop::check("lifecycle_legality", 400, |g| {
            let mut lc = Lifecycle::new();
            let mut prev = lc.state();
            let ops = 1 + (g.next_u64() % 24) as usize;
            for _ in 0..ops {
                let before = lc.state();
                match g.next_u64() % 6 {
                    0..=3 => {
                        let target = LifecycleState::ALL[(g.next_u64() % 4) as usize];
                        let res = lc.transition(target, "prop");
                        assert_eq!(res.is_ok(), legal(before, target), "{before:?}->{target:?}");
                        if res.is_err() {
                            assert_eq!(lc.state(), before, "failed transition mutated state");
                        }
                    }
                    4 => {
                        let acted = lc.stop();
                        assert_eq!(lc.state() != before, acted);
                        assert!(lc.state() != LifecycleState::Created);
                    }
                    _ => {
                        if let Ok(acted) = lc.delete("prop") {
                            assert_eq!(lc.state() != before, acted);
                            assert_eq!(lc.state(), LifecycleState::Deleted);
                        } else {
                            assert_eq!(lc.state(), before);
                        }
                    }
                }
                assert!(
                    lc.state().rank() >= prev.rank(),
                    "rank regressed: {prev:?} -> {:?}",
                    lc.state()
                );
                prev = lc.state();
            }
        });
    }
}
