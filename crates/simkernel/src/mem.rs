//! Address-space mappings and the page-level memory model.
//!
//! The model is deliberately *object-granular rather than page-granular*: a
//! mapping records how many bytes of it are committed/resident instead of
//! tracking individual page frames. That keeps deployments of 400 containers
//! (tens of GiB of simulated memory) cheap to account while preserving the
//! properties the paper's experiments depend on:
//!
//! * private anonymous memory is charged to the faulting process's cgroup;
//! * file-backed pages (binaries, engine shared libraries, Wasm modules)
//!   exist **once** in the page cache no matter how many processes map them,
//!   and are charged to the *first* toucher's cgroup, as in Linux;
//! * copy-on-write file mappings (data segments) turn into private anon
//!   charges when written.

use crate::vfs::FileId;

/// Identifier of a mapping within one process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingId(pub u64);

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Private anonymous memory (heap, stacks, JIT code buffers).
    AnonPrivate,
    /// Shared, read-only file mapping (library text, mmap'ed Wasm module).
    /// Pages live in the page cache and are shared machine-wide.
    FileShared(FileId),
    /// Private file mapping with copy-on-write semantics (data segments).
    /// Reads share the page cache; writes allocate private anonymous copies.
    FileCow(FileId),
}

impl MapKind {
    /// The backing file, if any.
    pub fn file(&self) -> Option<FileId> {
        match self {
            MapKind::AnonPrivate => None,
            MapKind::FileShared(f) | MapKind::FileCow(f) => Some(*f),
        }
    }
}

/// One region of a process address space.
#[derive(Debug, Clone)]
pub struct Mapping {
    pub id: MappingId,
    pub kind: MapKind,
    /// Reserved (virtual) length in bytes.
    pub len: u64,
    /// Bytes of private anonymous memory committed in this mapping
    /// (all of it for `AnonPrivate` touches, the written part for `FileCow`).
    pub committed_anon: u64,
    /// Bytes of file-backed pages this process has faulted in (its share of
    /// the page cache for RSS purposes; physical residency is on the file).
    pub touched_file: u64,
    /// Human-readable tag for debugging and reports (e.g. "libwamr.so").
    pub label: String,
}

impl Mapping {
    /// Resident set contribution of this mapping, Linux-style: private anon
    /// plus every shared page this process has touched.
    pub fn rss(&self) -> u64 {
        self.committed_anon + self.touched_file
    }

    /// Bytes that remain untouched (virtual-only).
    pub fn uncommitted(&self) -> u64 {
        self.len.saturating_sub(self.committed_anon + self.touched_file)
    }
}

/// Round a byte count up to whole pages of `page_size`, saturating rather
/// than wrapping for byte counts within a page of `u64::MAX` (adversarial
/// mmap lengths must fail the physical check, not alias to tiny values).
#[inline]
pub fn round_up_pages(bytes: u64, page_size: u64) -> u64 {
    debug_assert!(page_size.is_power_of_two());
    bytes.div_ceil(page_size).saturating_mul(page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up() {
        assert_eq!(round_up_pages(0, 4096), 0);
        assert_eq!(round_up_pages(1, 4096), 4096);
        assert_eq!(round_up_pages(4096, 4096), 4096);
        assert_eq!(round_up_pages(4097, 4096), 8192);
        // Near-max byte counts saturate instead of wrapping to ~0.
        assert_eq!(round_up_pages(u64::MAX - 1, 4096), u64::MAX);
    }

    #[test]
    fn mapping_rss() {
        let m = Mapping {
            id: MappingId(1),
            kind: MapKind::AnonPrivate,
            len: 10 << 20,
            committed_anon: 1 << 20,
            touched_file: 0,
            label: "heap".into(),
        };
        assert_eq!(m.rss(), 1 << 20);
        assert_eq!(m.uncommitted(), 9 << 20);
    }

    #[test]
    fn kind_file() {
        assert_eq!(MapKind::AnonPrivate.file(), None);
        assert_eq!(MapKind::FileShared(FileId(3)).file(), Some(FileId(3)));
        assert_eq!(MapKind::FileCow(FileId(4)).file(), Some(FileId(4)));
    }
}
