//! Processes: address spaces, namespaces, and kernel-side overhead.
//!
//! Each simulated process carries the kernel bookkeeping a real Linux task
//! does: a task struct + kernel stack, and page tables proportional to the
//! mapped address space. That overhead is charged to the process's cgroup as
//! kernel memory, and it is a real contributor to the gap between the
//! `free(1)` observer and the metrics-server observer in the paper — shim
//! processes live *outside* the pod cgroups, so their footprint shows up in
//! `free` but not in per-pod metrics.

use std::collections::BTreeMap;

use crate::cgroup::CgroupId;
use crate::mem::{Mapping, MappingId};

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    Running,
    /// Exited with a code; address space already torn down.
    Exited(i32),
    /// Killed by the kernel for exceeding a cgroup memory limit.
    OomKilled,
}

/// Linux namespace kinds a container runtime creates per container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NamespaceKind {
    Pid,
    Mount,
    Network,
    Uts,
    Ipc,
    Cgroup,
    User,
}

impl NamespaceKind {
    /// The full set a typical OCI runtime configures.
    pub const ALL: [NamespaceKind; 7] = [
        NamespaceKind::Pid,
        NamespaceKind::Mount,
        NamespaceKind::Network,
        NamespaceKind::Uts,
        NamespaceKind::Ipc,
        NamespaceKind::Cgroup,
        NamespaceKind::User,
    ];
}

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    pub pid: Pid,
    pub name: String,
    pub parent: Option<Pid>,
    pub cgroup: CgroupId,
    pub state: ProcState,
    /// Namespaces this process owns (created fresh for it, not inherited).
    pub owned_namespaces: Vec<NamespaceKind>,
    pub(crate) next_mapping: u64,
    pub(crate) mappings: BTreeMap<MappingId, Mapping>,
    /// Kernel bytes currently charged for this process (base + page tables).
    pub(crate) kernel_charged: u64,
}

impl Process {
    pub(crate) fn new(pid: Pid, name: &str, parent: Option<Pid>, cgroup: CgroupId) -> Self {
        Process {
            pid,
            name: name.to_string(),
            parent,
            cgroup,
            state: ProcState::Running,
            owned_namespaces: Vec::new(),
            next_mapping: 0,
            mappings: BTreeMap::new(),
            kernel_charged: 0,
        }
    }

    pub fn is_alive(&self) -> bool {
        self.state == ProcState::Running
    }

    /// Resident set size: private anon + touched shared file pages.
    pub fn rss(&self) -> u64 {
        self.mappings.values().map(|m| m.rss()).sum()
    }

    /// Total reserved virtual address space.
    pub fn vsz(&self) -> u64 {
        self.mappings.values().map(|m| m.len).sum()
    }

    /// Private anonymous bytes only (what the process "owns" exclusively).
    pub fn anon_bytes(&self) -> u64 {
        self.mappings.values().map(|m| m.committed_anon).sum()
    }

    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.values()
    }

    pub fn mapping(&self, id: MappingId) -> Option<&Mapping> {
        self.mappings.get(&id)
    }

    pub(crate) fn alloc_mapping_id(&mut self) -> MappingId {
        let id = MappingId(self.next_mapping);
        self.next_mapping += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MapKind;

    #[test]
    fn rss_and_vsz() {
        let mut p = Process::new(Pid(1), "t", None, CgroupId(0));
        let id = p.alloc_mapping_id();
        p.mappings.insert(
            id,
            Mapping {
                id,
                kind: MapKind::AnonPrivate,
                len: 1 << 20,
                committed_anon: 4096,
                touched_file: 0,
                label: "heap".into(),
            },
        );
        assert_eq!(p.rss(), 4096);
        assert_eq!(p.vsz(), 1 << 20);
        assert_eq!(p.anon_bytes(), 4096);
        assert!(p.is_alive());
    }

    #[test]
    fn mapping_ids_unique() {
        let mut p = Process::new(Pid(1), "t", None, CgroupId(0));
        let a = p.alloc_mapping_id();
        let b = p.alloc_mapping_id();
        assert_ne!(a, b);
    }

    #[test]
    fn namespace_set_is_complete() {
        assert_eq!(NamespaceKind::ALL.len(), 7);
    }
}
