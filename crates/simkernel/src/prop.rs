//! A tiny property-testing harness (the offline `proptest` fallback).
//!
//! [`check`] runs a closure over `cases` deterministic PRNG streams. On a
//! panic it reports the failing case's seed so the run can be replayed with
//! [`replay`] under a debugger. There is no shrinking — generators in this
//! repo are kept small enough that the raw failing case is readable.
//!
//! ```
//! simkernel::prop::check("addition commutes", 64, |g| {
//!     let (a, b) = (g.next_u32() as u64, g.next_u32() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SplitMix64;

/// Base seed folded into every case; fixed so CI failures reproduce.
const BASE_SEED: u64 = 0x6d77_6173_6d63_7472; // "mwasmctr"

/// Environment variable to replay one failing case: `MWC_PROP_SEED=<seed>`.
pub const SEED_ENV: &str = "MWC_PROP_SEED";

/// Run `body` over `cases` independent deterministic PRNG streams.
///
/// Each case gets its own [`SplitMix64`] seeded from the case index. When a
/// case panics, the harness prints the property name and the seed to replay
/// before propagating the panic.
pub fn check<F>(name: &str, cases: u64, mut body: F)
where
    F: FnMut(&mut SplitMix64),
{
    if let Ok(seed) = std::env::var(SEED_ENV) {
        let seed: u64 = seed.parse().expect("MWC_PROP_SEED must be a u64");
        replay(seed, &mut body);
        return;
    }
    for case in 0..cases {
        let seed = BASE_SEED.wrapping_add(case.wrapping_mul(0x9e3779b97f4a7c15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = SplitMix64::new(seed);
            body(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property {name:?} failed at case {case}/{cases}; \
                 replay with {SEED_ENV}={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Run one case with an explicit seed (the replay path).
pub fn replay<F>(seed: u64, body: &mut F)
where
    F: FnMut(&mut SplitMix64),
{
    let mut g = SplitMix64::new(seed);
    body(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u64;
        check("counts", 10, |_| n += 1);
        assert_eq!(n, 10);
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            check("fails", 8, |g| assert!(g.next_u64() % 2 == 0, "odd"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check("record", 5, |g| first.push(g.next_u64()));
        let mut second = Vec::new();
        check("record", 5, |g| second.push(g.next_u64()));
        assert_eq!(first, second);
    }
}
