//! Deterministic pseudo-random number generation, std-only.
//!
//! The external `rand` crate is not resolvable in this offline workspace;
//! this module provides the two small generators the repo needs instead:
//! [`SplitMix64`] for seeding/general use and [`Xorshift64Star`] as an
//! independent stream for differential tests. Both are deterministic and
//! portable — the same seed produces the same sequence everywhere, which
//! the repo's reproducibility guarantees rely on.

/// Sebastiano Vigna's SplitMix64: tiny state, excellent distribution, the
/// canonical seeder for other generators.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    #[inline]
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        f32::from_bits(self.next_u32())
    }

    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        f64::from_bits(self.next_u64())
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform value in `[lo, hi)` over i64.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add((self.next_u64() % (hi.wrapping_sub(lo)) as u64) as i64)
    }

    /// Uniform value in `[0, n)` as usize.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// An ASCII string of `len` characters drawn from `alphabet`.
    pub fn string_from(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| *self.choose(alphabet)).collect()
    }

    /// A string of length in `[min_len, max_len)` drawn from `alphabet`.
    pub fn string_upto(&mut self, alphabet: &[char], min_len: usize, max_len: usize) -> String {
        let len = min_len + self.index((max_len - min_len).max(1));
        self.string_from(alphabet, len)
    }
}

/// xorshift64* — a second, structurally different stream.
#[derive(Debug, Clone)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    pub fn new(seed: u64) -> Xorshift64Star {
        // The state must be nonzero; fold the seed through SplitMix64.
        let s = SplitMix64::new(seed).next_u64();
        Xorshift64Star { state: if s == 0 { 0x9e3779b97f4a7c15 } else { s } }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = g.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            assert!(g.index(3) < 3);
        }
    }

    #[test]
    fn xorshift_never_zero() {
        let mut g = Xorshift64Star::new(0);
        for _ in 0..100 {
            let _ = g.next_u64();
        }
        let mut h = Xorshift64Star::new(1);
        assert_ne!(g.next_u64(), h.next_u64());
    }
}
