//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All latency experiments in the reproduction run against this clock;
//! nothing in the workspace reads the host clock, which keeps every
//! experiment bit-for-bit deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since kernel boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since boot.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float (for report formatting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Build from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Build from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        Duration((s * 1e9).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// Scale by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (rounds; used by contention models).
    #[inline]
    pub fn scaled_f64(self, factor: f64) -> Duration {
        assert!(factor >= 0.0 && factor.is_finite());
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, d: Duration) -> Duration {
        Duration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, other: SimTime) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_secs(1);
        assert_eq!(t.as_nanos(), 1_000_000_000);
        let d = (t + Duration::from_millis(500)) - t;
        assert_eq!(d.as_millis(), 500);
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
    }

    #[test]
    fn scaling() {
        let d = Duration::from_millis(10);
        assert_eq!(d.scaled(3).as_millis(), 30);
        assert_eq!(d.scaled_f64(2.5).as_millis(), 25);
    }

    #[test]
    fn saturation() {
        let max = Duration(u64::MAX);
        assert_eq!(max.saturating_add(Duration(1)), max);
        assert_eq!((SimTime(u64::MAX) + Duration(10)).0, u64::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_nanos(7)), "7ns");
        assert_eq!(format!("{}", Duration::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", Duration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", Duration::from_secs(7)), "7.000s");
    }

    #[test]
    #[should_panic]
    fn negative_secs_f64_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }
}
