//! Typed step recording: the lifecycle-phase ledger behind every startup.
//!
//! Raw [`Step`] lists are what the discrete-event simulator consumes, but a
//! pod's startup program is assembled across five layers (kubelet →
//! containerd → shim/runtime → engine → workload), and an untyped
//! `Vec<Step>` loses *which layer* each step came from the moment it is
//! appended. [`StepTrace`] keeps that provenance: every step is recorded
//! under a [`Phase`], flattening back to the exact same `Vec<Step>` in
//! insertion order (so DES results and figure CSVs are unchanged), while a
//! per-phase breakdown of the startup latency — the `fig8_phases` report —
//! falls out of the same data.

use crate::des::Step;
use crate::time::Duration;

/// Which stage of the container lifecycle a step belongs to.
///
/// The taxonomy follows the pod startup pipeline top to bottom: the kubelet's
/// API work, sandbox assembly, networking and storage, the low-level runtime
/// operation, then the engine's own load → compile → instantiate → execute
/// staging (the common Wasm runtime lifecycle), and finally teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// API-server dispatch, watch queue, kubelet sync bookkeeping.
    ApiDispatch,
    /// Pod sandbox assembly: shim spawn, pause container, sandbox metadata.
    Sandbox,
    /// CNI network setup.
    Cni,
    /// Volume mounts.
    Volumes,
    /// Low-level runtime operations (crun/runc create/start, CRI RPCs).
    RuntimeOp,
    /// Engine/library initialization (linking, runtime baseline heaps).
    EngineInit,
    /// Guest program load: module read, parse, validation.
    ModuleLoad,
    /// Ahead-of-time or JIT compilation, code-cache relocation.
    Compile,
    /// Instance construction and linking.
    Instantiate,
    /// Guest execution to first-ready.
    Exec,
    /// Container/pod teardown.
    Teardown,
    /// Teardown forced by a fault (OOM kill, eviction, failed sync
    /// rollback) rather than an orderly remove — kept distinct so recovery
    /// work never blends into the startup-phase breakdown.
    TeardownAfterFault,
    /// Graceful termination: SIGTERM delivery, grace-period wait, and the
    /// escalation to SIGKILL when the guest ignores it. Like
    /// [`Phase::TeardownAfterFault`], frozen out of the STARTUP prefix.
    Terminating,
}

impl Phase {
    pub const ALL: [Phase; 13] = [
        Phase::ApiDispatch,
        Phase::Sandbox,
        Phase::Cni,
        Phase::Volumes,
        Phase::RuntimeOp,
        Phase::EngineInit,
        Phase::ModuleLoad,
        Phase::Compile,
        Phase::Instantiate,
        Phase::Exec,
        Phase::Teardown,
        Phase::TeardownAfterFault,
        Phase::Terminating,
    ];

    /// The phases a fault-free pod startup can produce — the column set of
    /// the fig8 per-phase report, frozen so the figure stays byte-identical
    /// as fault-only phases are appended to [`Phase::ALL`].
    pub const STARTUP: [Phase; 11] = [
        Phase::ApiDispatch,
        Phase::Sandbox,
        Phase::Cni,
        Phase::Volumes,
        Phase::RuntimeOp,
        Phase::EngineInit,
        Phase::ModuleLoad,
        Phase::Compile,
        Phase::Instantiate,
        Phase::Exec,
        Phase::Teardown,
    ];

    /// Stable column label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ApiDispatch => "api-dispatch",
            Phase::Sandbox => "sandbox",
            Phase::Cni => "cni",
            Phase::Volumes => "volumes",
            Phase::RuntimeOp => "runtime-op",
            Phase::EngineInit => "engine-init",
            Phase::ModuleLoad => "module-load",
            Phase::Compile => "compile",
            Phase::Instantiate => "instantiate",
            Phase::Exec => "exec",
            Phase::Teardown => "teardown",
            Phase::TeardownAfterFault => "teardown-after-fault",
            Phase::Terminating => "terminating",
        }
    }

    /// Position in [`Phase::ALL`] (row index into [`StepTrace::phase_busy`]).
    pub fn index(self) -> usize {
        match self {
            Phase::ApiDispatch => 0,
            Phase::Sandbox => 1,
            Phase::Cni => 2,
            Phase::Volumes => 3,
            Phase::RuntimeOp => 4,
            Phase::EngineInit => 5,
            Phase::ModuleLoad => 6,
            Phase::Compile => 7,
            Phase::Instantiate => 8,
            Phase::Exec => 9,
            Phase::Teardown => 10,
            Phase::TeardownAfterFault => 11,
            Phase::Terminating => 12,
        }
    }
}

/// An ordered list of `(Phase, Step)` records.
///
/// Insertion order is the simulation order: [`StepTrace::steps`] flattens to
/// the identical `Vec<Step>` the untyped plumbing used to build, which is
/// what keeps every figure byte-identical across the refactor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepTrace {
    entries: Vec<(Phase, Step)>,
}

impl StepTrace {
    pub fn new() -> StepTrace {
        StepTrace { entries: Vec::new() }
    }

    pub fn push(&mut self, phase: Phase, step: Step) {
        self.entries.push((phase, step));
    }

    pub fn extend(&mut self, phase: Phase, steps: impl IntoIterator<Item = Step>) {
        self.entries.extend(steps.into_iter().map(|s| (phase, s)));
    }

    /// Move every record from `other` onto the end of `self`, keeping
    /// `other`'s phase attribution. `other` is left empty.
    pub fn append(&mut self, other: &mut StepTrace) {
        self.entries.append(&mut other.entries);
    }

    /// Copy records (e.g. the tail of another trace) onto the end.
    pub fn extend_entries<'a>(&mut self, entries: impl IntoIterator<Item = &'a (Phase, Step)>) {
        self.entries.extend(entries.into_iter().cloned());
    }

    pub fn entries(&self) -> &[(Phase, Step)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flatten to the raw step program in insertion order (what the DES
    /// consumes; byte-identical to the pre-trace plumbing).
    pub fn steps(&self) -> Vec<Step> {
        self.entries.iter().map(|(_, s)| s.clone()).collect()
    }

    pub fn into_steps(self) -> Vec<Step> {
        self.entries.into_iter().map(|(_, s)| s).collect()
    }

    /// Busy time (CPU + I/O; lock steps carry no duration) charged to each
    /// phase, indexed as [`Phase::ALL`].
    pub fn phase_busy(&self) -> [Duration; Phase::ALL.len()] {
        let mut totals = [Duration::ZERO; Phase::ALL.len()];
        for (phase, step) in &self.entries {
            if let Step::Cpu(d) | Step::Io(d) = step {
                totals[phase.index()] += *d;
            }
        }
        totals
    }

    /// Total busy time across all phases.
    pub fn busy_total(&self) -> Duration {
        let mut total = Duration::ZERO;
        for d in self.phase_busy() {
            total += d;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::LockId;

    #[test]
    fn flatten_preserves_insertion_order_across_phases() {
        let mut t = StepTrace::new();
        t.push(Phase::Sandbox, Step::Cpu(Duration::from_micros(1)));
        t.push(Phase::Exec, Step::Io(Duration::from_micros(2)));
        t.push(Phase::Sandbox, Step::Cpu(Duration::from_micros(3)));
        assert_eq!(
            t.steps(),
            vec![
                Step::Cpu(Duration::from_micros(1)),
                Step::Io(Duration::from_micros(2)),
                Step::Cpu(Duration::from_micros(3)),
            ]
        );
    }

    #[test]
    fn append_keeps_donor_phases() {
        let mut a = StepTrace::new();
        a.push(Phase::ApiDispatch, Step::Io(Duration::from_micros(5)));
        let mut b = StepTrace::new();
        b.push(Phase::Compile, Step::Cpu(Duration::from_micros(7)));
        a.append(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.entries()[1].0, Phase::Compile);
    }

    #[test]
    fn phase_busy_sums_cpu_and_io_only() {
        let mut t = StepTrace::new();
        t.push(Phase::Compile, Step::Cpu(Duration::from_micros(10)));
        t.push(Phase::Compile, Step::Io(Duration::from_micros(5)));
        t.push(Phase::Compile, Step::Acquire(LockId(1)));
        t.push(Phase::Compile, Step::Release(LockId(1)));
        t.push(Phase::Exec, Step::Cpu(Duration::from_micros(2)));
        let busy = t.phase_busy();
        assert_eq!(busy[Phase::Compile.index()], Duration::from_micros(15));
        assert_eq!(busy[Phase::Exec.index()], Duration::from_micros(2));
        assert_eq!(t.busy_total(), Duration::from_micros(17));
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()), "duplicate label {}", p.label());
            assert_eq!(Phase::ALL[p.index()], p);
        }
    }

    #[test]
    fn startup_is_a_prefix_of_all() {
        // fig8 indexes phase_busy() with STARTUP phases; that only stays
        // valid while STARTUP is an exact prefix of ALL.
        assert_eq!(&Phase::ALL[..Phase::STARTUP.len()], &Phase::STARTUP[..]);
        assert!(!Phase::STARTUP.contains(&Phase::TeardownAfterFault));
        assert!(!Phase::STARTUP.contains(&Phase::Terminating));
    }
}
