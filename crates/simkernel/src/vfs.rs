//! A minimal virtual filesystem with page-cache accounting.
//!
//! Files either carry real bytes (Wasm modules, Python scripts, OCI config
//! JSON — content other subsystems actually parse and execute) or are
//! *synthetic*: a size-only stand-in for large binaries we model but do not
//! execute (e.g. the 40 MB Wasmer shared library). Both kinds participate
//! identically in page-cache accounting, which is what the memory
//! experiments observe.

use std::collections::BTreeMap;

use bytelite::Bytes;

use crate::cgroup::CgroupId;

/// Identifier of a file in the VFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// File contents: real bytes or a synthetic size.
#[derive(Debug, Clone)]
pub enum FileContent {
    /// Real bytes; `len` is the file size.
    Bytes(Bytes),
    /// Size-only stand-in for binaries we model but never parse.
    Synthetic(u64),
}

impl FileContent {
    pub fn len(&self) -> u64 {
        match self {
            FileContent::Bytes(b) => b.len() as u64,
            FileContent::Synthetic(n) => *n,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Real bytes if present.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            FileContent::Bytes(b) => Some(b),
            FileContent::Synthetic(_) => None,
        }
    }
}

/// A file plus its page-cache state.
#[derive(Debug, Clone)]
pub struct File {
    pub id: FileId,
    pub path: String,
    pub content: FileContent,
    /// Bytes of this file currently resident in the page cache.
    pub cached_bytes: u64,
    /// The cgroup charged for the cached pages (Linux first-toucher rule).
    pub charged_to: Option<CgroupId>,
    /// Number of live shared mappings of this file. Cached pages of files
    /// with `map_refs == 0` are evictable under memory pressure.
    pub map_refs: u64,
}

impl File {
    pub fn size(&self) -> u64 {
        self.content.len()
    }
}

/// The filesystem: a flat, sorted path namespace (directories are implicit
/// prefixes, which is all the container stack needs for bundles and images).
#[derive(Debug, Default)]
pub struct Vfs {
    next_id: u64,
    files: BTreeMap<FileId, File>,
    by_path: BTreeMap<String, FileId>,
}

impl Vfs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a file. Returns `None` if the path already exists.
    pub fn create(&mut self, path: &str, content: FileContent) -> Option<FileId> {
        if self.by_path.contains_key(path) {
            return None;
        }
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            File {
                id,
                path: path.to_string(),
                content,
                cached_bytes: 0,
                charged_to: None,
                map_refs: 0,
            },
        );
        self.by_path.insert(path.to_string(), id);
        Some(id)
    }

    /// Replace the contents of an existing file, dropping its cache.
    pub fn overwrite(&mut self, id: FileId, content: FileContent) -> Option<u64> {
        let f = self.files.get_mut(&id)?;
        let evicted = f.cached_bytes;
        f.cached_bytes = 0;
        f.charged_to = None;
        f.content = content;
        Some(evicted)
    }

    pub fn get(&self, id: FileId) -> Option<&File> {
        self.files.get(&id)
    }

    pub fn get_mut(&mut self, id: FileId) -> Option<&mut File> {
        self.files.get_mut(&id)
    }

    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.by_path.get(path).copied()
    }

    /// Remove a file; returns the bytes that were cached (for uncharging).
    pub fn remove(&mut self, id: FileId) -> Option<(File, u64)> {
        let f = self.files.remove(&id)?;
        self.by_path.remove(&f.path);
        let cached = f.cached_bytes;
        Some((f, cached))
    }

    /// All files whose path starts with `prefix`, in path order.
    pub fn list_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a File> + 'a {
        self.by_path
            .range(prefix.to_string()..)
            .take_while(move |(p, _)| p.starts_with(prefix))
            .filter_map(move |(_, id)| self.files.get(id))
    }

    /// Total bytes resident in the page cache across all files.
    pub fn total_cached(&self) -> u64 {
        self.files.values().map(|f| f.cached_bytes).sum()
    }

    /// Files with cached pages and no live mappings, in id order
    /// (deterministic eviction order).
    pub fn evictable(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.values().filter(|f| f.map_refs == 0 && f.cached_bytes > 0).map(|f| f.id)
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> FileContent {
        FileContent::Bytes(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn create_lookup_remove() {
        let mut vfs = Vfs::new();
        let id = vfs.create("/bin/crun", FileContent::Synthetic(1 << 20)).unwrap();
        assert_eq!(vfs.lookup("/bin/crun"), Some(id));
        assert_eq!(vfs.get(id).unwrap().size(), 1 << 20);
        assert!(vfs.create("/bin/crun", FileContent::Synthetic(1)).is_none());
        let (f, cached) = vfs.remove(id).unwrap();
        assert_eq!(f.path, "/bin/crun");
        assert_eq!(cached, 0);
        assert_eq!(vfs.lookup("/bin/crun"), None);
    }

    #[test]
    fn real_content_roundtrip() {
        let mut vfs = Vfs::new();
        let id = vfs.create("/app/main.wasm", bytes("\0asm")).unwrap();
        let f = vfs.get(id).unwrap();
        assert_eq!(f.content.bytes().unwrap().as_ref(), b"\0asm");
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn prefix_listing_is_sorted() {
        let mut vfs = Vfs::new();
        vfs.create("/img/b", FileContent::Synthetic(1)).unwrap();
        vfs.create("/img/a", FileContent::Synthetic(1)).unwrap();
        vfs.create("/other", FileContent::Synthetic(1)).unwrap();
        let names: Vec<_> = vfs.list_prefix("/img/").map(|f| f.path.clone()).collect();
        assert_eq!(names, vec!["/img/a", "/img/b"]);
    }

    #[test]
    fn evictable_excludes_mapped() {
        let mut vfs = Vfs::new();
        let a = vfs.create("/a", FileContent::Synthetic(8192)).unwrap();
        let b = vfs.create("/b", FileContent::Synthetic(8192)).unwrap();
        vfs.get_mut(a).unwrap().cached_bytes = 8192;
        vfs.get_mut(b).unwrap().cached_bytes = 8192;
        vfs.get_mut(b).unwrap().map_refs = 1;
        let ev: Vec<_> = vfs.evictable().collect();
        assert_eq!(ev, vec![a]);
        assert_eq!(vfs.total_cached(), 16384);
    }

    #[test]
    fn overwrite_drops_cache() {
        let mut vfs = Vfs::new();
        let id = vfs.create("/f", FileContent::Synthetic(4096)).unwrap();
        vfs.get_mut(id).unwrap().cached_bytes = 4096;
        let evicted = vfs.overwrite(id, FileContent::Synthetic(100)).unwrap();
        assert_eq!(evicted, 4096);
        assert_eq!(vfs.get(id).unwrap().cached_bytes, 0);
        assert_eq!(vfs.get(id).unwrap().size(), 100);
    }
}
