//! Property tests for the kernel substrate: accounting conservation under
//! arbitrary operation sequences, and determinism/work-conservation of the
//! discrete-event scheduler. Runs on the offline `simkernel::prop` harness.

use simkernel::prop::check;
use simkernel::rng::SplitMix64;
use simkernel::{Duration, Kernel, KernelConfig, MapKind, Sim, Step, TaskSpec};

/// Random memory-lifecycle actions executed against one kernel.
#[derive(Debug, Clone)]
enum Action {
    Spawn,
    ExitNewest,
    MmapAnon { bytes: u32 },
    TouchAll,
    CreateFile { kb: u16 },
    ReadNewestFile,
    MapNewestFileShared,
    RemoveNewestFile,
    MoveNewestProc,
}

fn gen_action(g: &mut SplitMix64) -> Action {
    match g.index(9) {
        0 => Action::Spawn,
        1 => Action::ExitNewest,
        2 => Action::MmapAnon { bytes: g.range_u64(1, 4 << 20) as u32 },
        3 => Action::TouchAll,
        4 => Action::CreateFile { kb: g.range_u64(1, 512) as u16 },
        5 => Action::ReadNewestFile,
        6 => Action::MapNewestFileShared,
        7 => Action::RemoveNewestFile,
        _ => Action::MoveNewestProc,
    }
}

#[test]
fn accounting_conserves_under_random_ops() {
    check("accounting_conserves_under_random_ops", 64, |g| {
        let actions: Vec<Action> = (0..1 + g.index(59)).map(|_| gen_action(g)).collect();
        let kernel = Kernel::boot(KernelConfig {
            ram_bytes: 2 << 30,
            cores: 4,
            proc_kernel_base: 16 << 10,
            page_table_divisor: 512,
            boot_used_bytes: 8 << 20,
        });
        let cg_a = kernel.cgroup_create(Kernel::ROOT_CGROUP, "a").unwrap();
        let cg_b = kernel.cgroup_create(Kernel::ROOT_CGROUP, "b").unwrap();
        let mut procs = Vec::new();
        let mut maps: Vec<(simkernel::Pid, simkernel::MappingId, u64)> = Vec::new();
        let mut files = Vec::new();
        let mut file_no = 0u32;

        for a in &actions {
            match a {
                Action::Spawn => {
                    procs.push(kernel.spawn("p", cg_a).unwrap());
                }
                Action::ExitNewest => {
                    if let Some(pid) = procs.pop() {
                        kernel.exit(pid, 0).unwrap();
                        kernel.reap(pid).unwrap();
                        maps.retain(|(p, _, _)| *p != pid);
                    }
                }
                Action::MmapAnon { bytes } => {
                    if let Some(&pid) = procs.last() {
                        let m = kernel.mmap(pid, *bytes as u64, MapKind::AnonPrivate).unwrap();
                        maps.push((pid, m, *bytes as u64));
                    }
                }
                Action::TouchAll => {
                    for (pid, m, len) in &maps {
                        // Ignore OOM kills (the process may be gone after).
                        let _ = kernel.touch(*pid, *m, *len);
                    }
                    maps.retain(|(p, _, _)| {
                        matches!(kernel.proc_state(*p), Ok(simkernel::ProcState::Running))
                    });
                    procs.retain(|p| {
                        matches!(kernel.proc_state(*p), Ok(simkernel::ProcState::Running))
                    });
                }
                Action::CreateFile { kb } => {
                    file_no += 1;
                    let id = kernel
                        .create_file(
                            &format!("/f{file_no}"),
                            simkernel::vfs::FileContent::Synthetic(*kb as u64 * 1024),
                        )
                        .unwrap();
                    files.push(id);
                }
                Action::ReadNewestFile => {
                    if let (Some(&pid), Some(&f)) = (procs.last(), files.last()) {
                        let _ = kernel.read_file(pid, f);
                    }
                }
                Action::MapNewestFileShared => {
                    if let (Some(&pid), Some(&f)) = (procs.last(), files.last()) {
                        let size = kernel.file_size(f).unwrap();
                        let m = kernel.mmap(pid, size, MapKind::FileShared(f)).unwrap();
                        let _ = kernel.touch(pid, m, size);
                    }
                }
                Action::RemoveNewestFile => {
                    if let Some(f) = files.pop() {
                        // May be mapped; removal drops cache and uncharges.
                        let _ = kernel.remove_file(f);
                    }
                }
                Action::MoveNewestProc => {
                    if let Some(&pid) = procs.last() {
                        kernel.move_process(pid, cg_b).unwrap();
                    }
                }
            }

            // INVARIANTS after every action:
            let free = kernel.free();
            // 1. Physical conservation.
            assert_eq!(free.total, free.used + free.buff_cache + free.free);
            // 2. Hierarchy: root cgroup sees at least each child's charge.
            let root = kernel.cgroup_stat(Kernel::ROOT_CGROUP).unwrap();
            let a_stat = kernel.cgroup_stat(cg_a).unwrap();
            let b_stat = kernel.cgroup_stat(cg_b).unwrap();
            assert!(root.current >= a_stat.current);
            assert!(root.current >= b_stat.current);
            assert!(root.current >= a_stat.current + b_stat.current);
            // 3. Working sets never exceed memory.current.
            assert!(kernel.cgroup_working_set(cg_a).unwrap() <= a_stat.current);
        }

        // Teardown: exiting everything releases all anon+kernel charges.
        for pid in procs {
            kernel.exit(pid, 0).unwrap();
        }
        let a_stat = kernel.cgroup_stat(cg_a).unwrap();
        let b_stat = kernel.cgroup_stat(cg_b).unwrap();
        assert_eq!(a_stat.anon_bytes, 0);
        assert_eq!(b_stat.anon_bytes, 0);
        assert_eq!(a_stat.kernel_bytes, 0);
        assert_eq!(b_stat.kernel_bytes, 0);
    });
}

// Random DES task sets.
fn gen_task(g: &mut SplitMix64, max_lock: u32) -> TaskSpec {
    let start_ms = g.range_u64(0, 500);
    let mut t = TaskSpec::new("t").starting_at(simkernel::SimTime(start_ms * 1_000_000));
    for _ in 0..1 + g.index(7) {
        t = match g.index(3) {
            0 => t.cpu(Duration::from_nanos(g.range_u64(1, 200_000_000))),
            1 => t.io(Duration::from_nanos(g.range_u64(1, 200_000_000))),
            _ => {
                let l = simkernel::LockId(g.range_u64(0, max_lock as u64) as u32);
                t.acquire(l).cpu(Duration::from_millis(1)).release(l)
            }
        };
    }
    t
}

#[test]
fn des_is_deterministic_and_work_conserving() {
    check("des_is_deterministic_and_work_conserving", 48, |g| {
        let tasks: Vec<TaskSpec> = (0..1 + g.index(23)).map(|_| gen_task(g, 3)).collect();
        let cores = g.range_u64(1, 8) as u32;
        let sim = Sim::new(cores);
        let a = sim.run(tasks.clone());
        let b = sim.run(tasks.clone());
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.finished, y.finished, "deterministic");
        }
        // Work conservation bounds: makespan ≥ max single-task critical
        // path, and ≥ total CPU / cores (steps after last start).
        let total_cpu: u64 = tasks.iter().map(|t| t.cpu_demand().as_nanos()).sum();
        let longest: u64 = tasks
            .iter()
            .map(|t| {
                t.start_at.as_nanos()
                    + t.steps
                        .iter()
                        .map(|s| match s {
                            Step::Cpu(d) | Step::Io(d) => d.as_nanos(),
                            _ => 0,
                        })
                        .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        assert!(a.makespan.as_nanos() >= total_cpu / cores as u64);
        assert!(a.makespan.as_nanos() + 2 >= longest, "{} vs {}", a.makespan.as_nanos(), longest);
        // All finish times are at/after their start times.
        for (r, t) in a.results.iter().zip(&tasks) {
            assert!(r.finished >= t.start_at);
        }
    });
}
