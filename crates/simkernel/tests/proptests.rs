//! Property tests for the kernel substrate: accounting conservation under
//! arbitrary operation sequences, and determinism/work-conservation of the
//! discrete-event scheduler.

use proptest::prelude::*;
use simkernel::{
    Duration, Kernel, KernelConfig, MapKind, Sim, Step, TaskSpec,
};

/// Random memory-lifecycle actions executed against one kernel.
#[derive(Debug, Clone)]
enum Action {
    Spawn,
    ExitNewest,
    MmapAnon { bytes: u32 },
    TouchAll,
    CreateFile { kb: u16 },
    ReadNewestFile,
    MapNewestFileShared,
    RemoveNewestFile,
    MoveNewestProc,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Spawn),
        Just(Action::ExitNewest),
        (1u32..(4 << 20)).prop_map(|bytes| Action::MmapAnon { bytes }),
        Just(Action::TouchAll),
        (1u16..512).prop_map(|kb| Action::CreateFile { kb }),
        Just(Action::ReadNewestFile),
        Just(Action::MapNewestFileShared),
        Just(Action::RemoveNewestFile),
        Just(Action::MoveNewestProc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn accounting_conserves_under_random_ops(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let kernel = Kernel::boot(KernelConfig {
            ram_bytes: 2 << 30,
            cores: 4,
            proc_kernel_base: 16 << 10,
            page_table_divisor: 512,
            boot_used_bytes: 8 << 20,
        });
        let cg_a = kernel.cgroup_create(Kernel::ROOT_CGROUP, "a").unwrap();
        let cg_b = kernel.cgroup_create(Kernel::ROOT_CGROUP, "b").unwrap();
        let mut procs = Vec::new();
        let mut maps: Vec<(simkernel::Pid, simkernel::MappingId, u64)> = Vec::new();
        let mut files = Vec::new();
        let mut file_no = 0u32;

        for a in &actions {
            match a {
                Action::Spawn => {
                    procs.push(kernel.spawn("p", cg_a).unwrap());
                }
                Action::ExitNewest => {
                    if let Some(pid) = procs.pop() {
                        kernel.exit(pid, 0).unwrap();
                        kernel.reap(pid).unwrap();
                        maps.retain(|(p, _, _)| *p != pid);
                    }
                }
                Action::MmapAnon { bytes } => {
                    if let Some(&pid) = procs.last() {
                        let m = kernel.mmap(pid, *bytes as u64, MapKind::AnonPrivate).unwrap();
                        maps.push((pid, m, *bytes as u64));
                    }
                }
                Action::TouchAll => {
                    for (pid, m, len) in &maps {
                        // Ignore OOM kills (the process may be gone after).
                        let _ = kernel.touch(*pid, *m, *len);
                    }
                    maps.retain(|(p, _, _)| {
                        matches!(kernel.proc_state(*p), Ok(simkernel::ProcState::Running))
                    });
                    procs.retain(|p| {
                        matches!(kernel.proc_state(*p), Ok(simkernel::ProcState::Running))
                    });
                }
                Action::CreateFile { kb } => {
                    file_no += 1;
                    let id = kernel
                        .create_file(
                            &format!("/f{file_no}"),
                            simkernel::vfs::FileContent::Synthetic(*kb as u64 * 1024),
                        )
                        .unwrap();
                    files.push(id);
                }
                Action::ReadNewestFile => {
                    if let (Some(&pid), Some(&f)) = (procs.last(), files.last()) {
                        let _ = kernel.read_file(pid, f);
                    }
                }
                Action::MapNewestFileShared => {
                    if let (Some(&pid), Some(&f)) = (procs.last(), files.last()) {
                        let size = kernel.file_size(f).unwrap();
                        let m = kernel.mmap(pid, size, MapKind::FileShared(f)).unwrap();
                        let _ = kernel.touch(pid, m, size);
                    }
                }
                Action::RemoveNewestFile => {
                    if let Some(f) = files.pop() {
                        // May be mapped; removal drops cache and uncharges.
                        let _ = kernel.remove_file(f);
                    }
                }
                Action::MoveNewestProc => {
                    if let Some(&pid) = procs.last() {
                        kernel.move_process(pid, cg_b).unwrap();
                    }
                }
            }

            // INVARIANTS after every action:
            let free = kernel.free();
            // 1. Physical conservation.
            prop_assert_eq!(free.total, free.used + free.buff_cache + free.free);
            // 2. Hierarchy: root cgroup sees at least each child's charge.
            let root = kernel.cgroup_stat(Kernel::ROOT_CGROUP).unwrap();
            let a_stat = kernel.cgroup_stat(cg_a).unwrap();
            let b_stat = kernel.cgroup_stat(cg_b).unwrap();
            prop_assert!(root.current >= a_stat.current);
            prop_assert!(root.current >= b_stat.current);
            prop_assert!(root.current >= a_stat.current + b_stat.current);
            // 3. Working sets never exceed memory.current.
            prop_assert!(kernel.cgroup_working_set(cg_a).unwrap() <= a_stat.current);
        }

        // Teardown: exiting everything releases all anon+kernel charges.
        for pid in procs {
            kernel.exit(pid, 0).unwrap();
        }
        let a_stat = kernel.cgroup_stat(cg_a).unwrap();
        let b_stat = kernel.cgroup_stat(cg_b).unwrap();
        prop_assert_eq!(a_stat.anon_bytes, 0);
        prop_assert_eq!(b_stat.anon_bytes, 0);
        prop_assert_eq!(a_stat.kernel_bytes, 0);
        prop_assert_eq!(b_stat.kernel_bytes, 0);
    }
}

// Random DES task sets.
prop_compose! {
    fn arb_task(max_lock: u32)(
        segments in proptest::collection::vec(
            prop_oneof![
                (1u64..200_000_000).prop_map(|ns| (0u8, ns)),
                (1u64..200_000_000).prop_map(|ns| (1u8, ns)),
                (0..max_lock).prop_map(|l| (2u8, l as u64)),
            ],
            1..8,
        ),
        start_ms in 0u64..500,
    ) -> TaskSpec {
        let mut t = TaskSpec::new("t").starting_at(simkernel::SimTime(start_ms * 1_000_000));
        for (kind, v) in segments {
            t = match kind {
                0 => t.cpu(Duration::from_nanos(v)),
                1 => t.io(Duration::from_nanos(v)),
                _ => {
                    let l = simkernel::LockId(v as u32);
                    t.acquire(l).cpu(Duration::from_millis(1)).release(l)
                }
            };
        }
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn des_is_deterministic_and_work_conserving(
        tasks in proptest::collection::vec(arb_task(3), 1..24),
        cores in 1u32..8,
    ) {
        let sim = Sim::new(cores);
        let a = sim.run(tasks.clone());
        let b = sim.run(tasks.clone());
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            prop_assert_eq!(x.finished, y.finished, "deterministic");
        }
        // Work conservation bounds: makespan ≥ max single-task critical
        // path, and ≥ total CPU / cores (steps after last start).
        let total_cpu: u64 = tasks.iter().map(|t| t.cpu_demand().as_nanos()).sum();
        let longest: u64 = tasks
            .iter()
            .map(|t| {
                t.start_at.as_nanos()
                    + t.steps
                        .iter()
                        .map(|s| match s {
                            Step::Cpu(d) | Step::Io(d) => d.as_nanos(),
                            _ => 0,
                        })
                        .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        prop_assert!(a.makespan.as_nanos() >= total_cpu / cores as u64);
        prop_assert!(a.makespan.as_nanos() + 2 >= longest, "{} vs {}", a.makespan.as_nanos(), longest);
        // All finish times are at/after their start times.
        for (r, t) in a.results.iter().zip(&tasks) {
            prop_assert!(r.finished >= t.start_at);
        }
    }
}
