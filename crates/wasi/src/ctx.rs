//! The WASI context: per-instance arguments, environment, preopens, stdio.

use std::cell::RefCell;
use std::rc::Rc;

use simkernel::{FileId, Kernel, Pid};

/// Shared handle to a stdio capture buffer.
pub type StdioHandle = Rc<RefCell<Vec<u8>>>;

/// An open guest file descriptor.
#[derive(Debug, Clone)]
pub(crate) enum FdEntry {
    /// stdin (reads return EOF).
    Stdin,
    /// stdout/stderr capture buffer.
    Stdio(StdioHandle),
    /// A pre-opened directory with its guest path.
    PreopenDir { guest_path: String },
    /// An open file in the simulated VFS with a read cursor.
    File { file: FileId, offset: u64 },
}

/// Mutable WASI state shared by all host functions of one instance.
pub(crate) struct WasiState {
    pub kernel: Kernel,
    pub pid: Pid,
    pub args: Vec<String>,
    pub env: Vec<(String, String)>,
    /// fd table; indices 0..=2 are stdio, preopens start at 3.
    pub fds: Vec<Option<FdEntry>>,
    /// Guest path prefix → VFS path prefix, parallel to preopen fds.
    pub preopens: Vec<(String, String)>,
    /// Deterministic PRNG state for `random_get`.
    pub rng: u64,
    pub exit_code: Option<i32>,
}

impl WasiState {
    pub fn resolve(&self, dir_fd: usize, rel_path: &str) -> Option<String> {
        let entry = self.fds.get(dir_fd)?.as_ref()?;
        let FdEntry::PreopenDir { guest_path } = entry else { return None };
        let (gp, host_prefix) = self.preopens.iter().find(|(g, _)| g == guest_path)?;
        let _ = gp;
        let mut p = host_prefix.trim_end_matches('/').to_string();
        p.push('/');
        p.push_str(rel_path.trim_start_matches('/'));
        Some(p)
    }

    pub fn alloc_fd(&mut self, entry: FdEntry) -> usize {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i;
            }
        }
        self.fds.push(Some(entry));
        self.fds.len() - 1
    }
}

/// Builder for a WASI instance context — the "WASI argument handling"
/// integration surface from the paper (§III-C item 2).
pub struct WasiCtx {
    pub(crate) state: Rc<RefCell<WasiState>>,
    stdout: StdioHandle,
    stderr: StdioHandle,
}

impl WasiCtx {
    /// A context executing as `pid` on `kernel`.
    pub fn new(kernel: Kernel, pid: Pid) -> WasiCtx {
        let stdout: StdioHandle = Rc::new(RefCell::new(Vec::new()));
        let stderr: StdioHandle = Rc::new(RefCell::new(Vec::new()));
        let state = WasiState {
            kernel,
            pid,
            args: Vec::new(),
            env: Vec::new(),
            fds: vec![
                Some(FdEntry::Stdin),
                Some(FdEntry::Stdio(stdout.clone())),
                Some(FdEntry::Stdio(stderr.clone())),
            ],
            preopens: Vec::new(),
            rng: 0x9e3779b97f4a7c15,
            exit_code: None,
        };
        WasiCtx { state: Rc::new(RefCell::new(state)), stdout, stderr }
    }

    /// Append a command-line argument (the first is conventionally `argv[0]`).
    pub fn arg(self, a: impl Into<String>) -> Self {
        self.state.borrow_mut().args.push(a.into());
        self
    }

    /// Append several arguments.
    pub fn args(self, args: impl IntoIterator<Item = String>) -> Self {
        self.state.borrow_mut().args.extend(args);
        self
    }

    /// Set an environment variable.
    pub fn env(self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.state.borrow_mut().env.push((k.into(), v.into()));
        self
    }

    /// Set several environment variables.
    pub fn envs(self, envs: impl IntoIterator<Item = (String, String)>) -> Self {
        self.state.borrow_mut().env.extend(envs);
        self
    }

    /// Pre-open `host_prefix` (a VFS path prefix) as `guest_path`.
    pub fn preopen(self, guest_path: impl Into<String>, host_prefix: impl Into<String>) -> Self {
        {
            let mut st = self.state.borrow_mut();
            let guest = guest_path.into();
            st.preopens.push((guest.clone(), host_prefix.into()));
            st.fds.push(Some(FdEntry::PreopenDir { guest_path: guest }));
        }
        self
    }

    /// Seed `random_get` (deterministic by default).
    pub fn random_seed(self, seed: u64) -> Self {
        self.state.borrow_mut().rng = seed | 1;
        self
    }

    /// Handle to the captured stdout bytes (valid after execution).
    pub fn stdout_handle(&self) -> StdioHandle {
        self.stdout.clone()
    }

    /// Handle to the captured stderr bytes.
    pub fn stderr_handle(&self) -> StdioHandle {
        self.stderr.clone()
    }

    /// Exit code recorded by `proc_exit`, if the guest called it.
    pub fn exit_code(&self) -> Option<i32> {
        self.state.borrow().exit_code
    }

    /// Total bytes the guest wrote to stdout+stderr so far.
    pub fn bytes_written(&self) -> usize {
        self.stdout.borrow().len() + self.stderr.borrow().len()
    }

    /// Build the import set for [`wasm_core::Instance::instantiate`].
    pub fn into_imports(self) -> wasm_core::instance::Imports {
        crate::host::build_imports(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::KernelConfig;

    fn ctx() -> WasiCtx {
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        WasiCtx::new(kernel, pid)
    }

    #[test]
    fn builder_accumulates() {
        let c = ctx()
            .arg("app")
            .arg("--serve")
            .env("PORT", "8080")
            .preopen("/data", "/containers/c1/rootfs/data");
        let st = c.state.borrow();
        assert_eq!(st.args, vec!["app", "--serve"]);
        assert_eq!(st.env, vec![("PORT".to_string(), "8080".to_string())]);
        assert_eq!(st.preopens.len(), 1);
        assert_eq!(st.fds.len(), 4, "stdio + one preopen");
    }

    #[test]
    fn resolve_preopen_paths() {
        let c = ctx().preopen("/data", "/root/fs/data");
        let st = c.state.borrow();
        assert_eq!(st.resolve(3, "file.txt").unwrap(), "/root/fs/data/file.txt");
        assert_eq!(st.resolve(3, "/abs.txt").unwrap(), "/root/fs/data/abs.txt");
        assert!(st.resolve(0, "x").is_none(), "stdin is not a directory");
        assert!(st.resolve(9, "x").is_none(), "unknown fd");
    }

    #[test]
    fn fd_allocation_reuses_slots() {
        let c = ctx();
        let mut st = c.state.borrow_mut();
        let fd = st.alloc_fd(FdEntry::File { file: FileId(1), offset: 0 });
        assert_eq!(fd, 3);
        st.fds[3] = None;
        let fd2 = st.alloc_fd(FdEntry::File { file: FileId(2), offset: 0 });
        assert_eq!(fd2, 3, "freed slot reused");
    }
}
