//! WASI errno values (preview 1).

/// WASI error numbers, as returned to guest code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Errno {
    Success = 0,
    TooBig = 1,
    Access = 2,
    BadF = 8,
    Fault = 21,
    Inval = 28,
    Io = 29,
    NoEnt = 44,
    NoSys = 52,
    NotDir = 54,
    Perm = 63,
    NotCapable = 76,
}

impl Errno {
    /// Raw value for returning to the guest.
    pub fn raw(self) -> i32 {
        self as u16 as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_values_match_spec() {
        assert_eq!(Errno::Success.raw(), 0);
        assert_eq!(Errno::BadF.raw(), 8);
        assert_eq!(Errno::NoEnt.raw(), 44);
        assert_eq!(Errno::NoSys.raw(), 52);
        assert_eq!(Errno::NotCapable.raw(), 76);
    }
}
