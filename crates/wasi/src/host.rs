//! Host-function implementations for the WASI preview-1 subset.

use std::cell::RefCell;
use std::rc::Rc;

use wasm_core::instance::Imports;
use wasm_core::{LinearMemory, Trap, Value};

use crate::ctx::{FdEntry, WasiState};
use crate::errno::Errno;

const MODULE: &str = "wasi_snapshot_preview1";

fn i32_arg(args: &[Value], i: usize) -> Result<u32, Trap> {
    args.get(i)
        .and_then(|v| v.as_i32())
        .map(|v| v as u32)
        .ok_or_else(|| Trap::HostError(format!("bad wasi argument {i}")))
}

fn mem(memory: &mut Option<LinearMemory>) -> Result<&mut LinearMemory, Trap> {
    memory.as_mut().ok_or_else(|| Trap::HostError("wasi call without memory export".into()))
}

fn ok(e: Errno) -> Result<Vec<Value>, Trap> {
    Ok(vec![Value::I32(e.raw())])
}

/// Wire every supported WASI function into an import set.
pub(crate) fn build_imports(state: Rc<RefCell<WasiState>>) -> Imports {
    let mut imports = Imports::new();

    // args_sizes_get(argc: *u32, argv_buf_size: *u32) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "args_sizes_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let s = st.borrow();
                let argc = s.args.len() as u32;
                let buf: u32 = s.args.iter().map(|a| a.len() as u32 + 1).sum();
                m.store_u32(i32_arg(args, 0)?, 0, argc)?;
                m.store_u32(i32_arg(args, 1)?, 0, buf)?;
                ok(Errno::Success)
            }),
        );
    }

    // args_get(argv: *u32, argv_buf: *u8) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "args_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let s = st.borrow();
                let mut argv = i32_arg(args, 0)?;
                let mut buf = i32_arg(args, 1)?;
                for a in &s.args {
                    m.store_u32(argv, 0, buf)?;
                    m.write_bytes(buf, a.as_bytes())?;
                    m.write_bytes(buf + a.len() as u32, &[0])?;
                    buf += a.len() as u32 + 1;
                    argv += 4;
                }
                ok(Errno::Success)
            }),
        );
    }

    // environ_sizes_get / environ_get — same shape as args.
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "environ_sizes_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let s = st.borrow();
                let count = s.env.len() as u32;
                let buf: u32 = s.env.iter().map(|(k, v)| (k.len() + v.len() + 2) as u32).sum();
                m.store_u32(i32_arg(args, 0)?, 0, count)?;
                m.store_u32(i32_arg(args, 1)?, 0, buf)?;
                ok(Errno::Success)
            }),
        );
    }
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "environ_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let s = st.borrow();
                let mut envp = i32_arg(args, 0)?;
                let mut buf = i32_arg(args, 1)?;
                for (k, v) in &s.env {
                    let entry = format!("{k}={v}");
                    m.store_u32(envp, 0, buf)?;
                    m.write_bytes(buf, entry.as_bytes())?;
                    m.write_bytes(buf + entry.len() as u32, &[0])?;
                    buf += entry.len() as u32 + 1;
                    envp += 4;
                }
                ok(Errno::Success)
            }),
        );
    }

    // fd_write(fd, iovs, iovs_len, nwritten) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_write",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let s = st.borrow();
                let fd = i32_arg(args, 0)? as usize;
                let iovs = i32_arg(args, 1)?;
                let iovs_len = i32_arg(args, 2)?;
                let nwritten_ptr = i32_arg(args, 3)?;
                let Some(Some(entry)) = s.fds.get(fd) else {
                    return ok(Errno::BadF);
                };
                let sink = match entry {
                    FdEntry::Stdio(h) => h.clone(),
                    FdEntry::Stdin | FdEntry::PreopenDir { .. } | FdEntry::File { .. } => {
                        return ok(Errno::BadF)
                    }
                };
                drop(s);
                let mut written = 0u32;
                for i in 0..iovs_len {
                    let base = m.load_u32(iovs + i * 8, 0)?;
                    let len = m.load_u32(iovs + i * 8, 4)?;
                    let bytes = m.read_bytes(base, len)?.to_vec();
                    sink.borrow_mut().extend_from_slice(&bytes);
                    written += len;
                }
                m.store_u32(nwritten_ptr, 0, written)?;
                ok(Errno::Success)
            }),
        );
    }

    // fd_read(fd, iovs, iovs_len, nread) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_read",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let fd = i32_arg(args, 0)? as usize;
                let iovs = i32_arg(args, 1)?;
                let iovs_len = i32_arg(args, 2)?;
                let nread_ptr = i32_arg(args, 3)?;
                let mut s = st.borrow_mut();
                let (file, offset) = match s.fds.get(fd) {
                    Some(Some(FdEntry::Stdin)) => {
                        // EOF.
                        m.store_u32(nread_ptr, 0, 0)?;
                        return ok(Errno::Success);
                    }
                    Some(Some(FdEntry::File { file, offset })) => (*file, *offset),
                    _ => return ok(Errno::BadF),
                };
                // Fault the file via the kernel (charges the container's
                // cgroup) and copy from its content.
                let kernel = s.kernel.clone();
                let pid = s.pid;
                let content = match kernel.read_file(pid, file) {
                    Ok(Some(bytes)) => bytes,
                    Ok(None) => return ok(Errno::Io), // synthetic file
                    Err(_) => return ok(Errno::NoEnt),
                };
                let mut read_total = 0u32;
                let mut pos = offset as usize;
                for i in 0..iovs_len {
                    let base = m.load_u32(iovs + i * 8, 0)?;
                    let len = m.load_u32(iovs + i * 8, 4)? as usize;
                    let available = content.len().saturating_sub(pos);
                    let n = len.min(available);
                    if n == 0 {
                        break;
                    }
                    m.write_bytes(base, &content[pos..pos + n])?;
                    pos += n;
                    read_total += n as u32;
                }
                if let Some(Some(FdEntry::File { offset, .. })) = s.fds.get_mut(fd) {
                    *offset = pos as u64;
                }
                m.store_u32(nread_ptr, 0, read_total)?;
                ok(Errno::Success)
            }),
        );
    }

    // fd_close(fd) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_close",
            Box::new(move |_, args| {
                let fd = i32_arg(args, 0)? as usize;
                let mut s = st.borrow_mut();
                if fd < 3 || fd >= s.fds.len() || s.fds[fd].is_none() {
                    return ok(Errno::BadF);
                }
                s.fds[fd] = None;
                ok(Errno::Success)
            }),
        );
    }

    // fd_prestat_get(fd, buf: *prestat) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_prestat_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let fd = i32_arg(args, 0)? as usize;
                let buf = i32_arg(args, 1)?;
                let s = st.borrow();
                match s.fds.get(fd) {
                    Some(Some(FdEntry::PreopenDir { guest_path })) => {
                        m.store_u32(buf, 0, 0)?; // tag: dir
                        m.store_u32(buf, 4, guest_path.len() as u32)?;
                        ok(Errno::Success)
                    }
                    _ => ok(Errno::BadF),
                }
            }),
        );
    }

    // fd_prestat_dir_name(fd, path: *u8, path_len) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_prestat_dir_name",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let fd = i32_arg(args, 0)? as usize;
                let path = i32_arg(args, 1)?;
                let path_len = i32_arg(args, 2)? as usize;
                let s = st.borrow();
                match s.fds.get(fd) {
                    Some(Some(FdEntry::PreopenDir { guest_path })) => {
                        if guest_path.len() > path_len {
                            return ok(Errno::Inval);
                        }
                        m.write_bytes(path, guest_path.as_bytes())?;
                        ok(Errno::Success)
                    }
                    _ => ok(Errno::BadF),
                }
            }),
        );
    }

    // path_open(dir_fd, dirflags, path, path_len, oflags, rights_base,
    //           rights_inheriting, fdflags, opened_fd: *u32) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "path_open",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let dir_fd = i32_arg(args, 0)? as usize;
                let path_ptr = i32_arg(args, 2)?;
                let path_len = i32_arg(args, 3)?;
                let opened_ptr = i32_arg(args, 8)?;
                let rel = String::from_utf8(m.read_bytes(path_ptr, path_len)?.to_vec())
                    .map_err(|_| Trap::HostError("non-utf8 path".into()))?;
                let mut s = st.borrow_mut();
                let Some(host_path) = s.resolve(dir_fd, &rel) else {
                    return ok(Errno::NotCapable);
                };
                let kernel = s.kernel.clone();
                let Ok(file) = kernel.lookup(&host_path) else {
                    return ok(Errno::NoEnt);
                };
                let fd = s.alloc_fd(FdEntry::File { file, offset: 0 });
                m.store_u32(opened_ptr, 0, fd as u32)?;
                ok(Errno::Success)
            }),
        );
    }

    // fd_seek(fd, offset: i64, whence, newoffset: *u64) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "fd_seek",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let fd = i32_arg(args, 0)? as usize;
                let delta = args
                    .get(1)
                    .and_then(|v| v.as_i64())
                    .ok_or_else(|| Trap::HostError("fd_seek offset".into()))?;
                let whence = i32_arg(args, 2)?;
                let new_ptr = i32_arg(args, 3)?;
                let mut s = st.borrow_mut();
                let kernel = s.kernel.clone();
                let Some(Some(FdEntry::File { file, offset })) = s.fds.get_mut(fd) else {
                    return ok(Errno::BadF);
                };
                let size = kernel.file_size(*file).unwrap_or(0) as i64;
                let base = match whence {
                    0 => 0,
                    1 => *offset as i64,
                    2 => size,
                    _ => return ok(Errno::Inval),
                };
                let new = base + delta;
                if new < 0 {
                    return ok(Errno::Inval);
                }
                *offset = new as u64;
                m.store_u64(new_ptr, 0, new as u64)?;
                ok(Errno::Success)
            }),
        );
    }

    // clock_time_get(id, precision: i64, time: *u64) -> errno
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "clock_time_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let time_ptr = i32_arg(args, 2)?;
                let now = st.borrow().kernel.now().as_nanos();
                m.store_u64(time_ptr, 0, now)?;
                ok(Errno::Success)
            }),
        );
    }

    // random_get(buf, buf_len) -> errno — deterministic xorshift.
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "random_get",
            Box::new(move |memory, args| {
                let m = mem(memory)?;
                let buf = i32_arg(args, 0)?;
                let len = i32_arg(args, 1)?;
                let mut s = st.borrow_mut();
                let mut bytes = Vec::with_capacity(len as usize);
                while bytes.len() < len as usize {
                    s.rng ^= s.rng << 13;
                    s.rng ^= s.rng >> 7;
                    s.rng ^= s.rng << 17;
                    bytes.extend_from_slice(&s.rng.to_le_bytes());
                }
                bytes.truncate(len as usize);
                m.write_bytes(buf, &bytes)?;
                ok(Errno::Success)
            }),
        );
    }

    // sched_yield() -> errno
    imports.register(MODULE, "sched_yield", Box::new(move |_, _| ok(Errno::Success)));

    // proc_exit(code) — unwinds execution with Trap::Exit.
    {
        let st = state.clone();
        imports.register(
            MODULE,
            "proc_exit",
            Box::new(move |_, args| {
                let code = i32_arg(args, 0)? as i32;
                st.borrow_mut().exit_code = Some(code);
                Err(Trap::Exit(code))
            }),
        );
    }

    imports
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use simkernel::vfs::FileContent;
    use simkernel::{Kernel, KernelConfig};
    use wasm_core::{FuncType, Instance, InstanceConfig, ModuleBuilder, Trap, ValType, Value};

    use crate::WasiCtx;

    fn kernel_and_pid() -> (Kernel, simkernel::Pid) {
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        (kernel, pid)
    }

    fn wasi_sig(n: usize) -> FuncType {
        FuncType::new(vec![ValType::I32; n], vec![ValType::I32])
    }

    #[test]
    fn args_roundtrip_through_guest() {
        // Guest: call args_sizes_get(0, 4), then args_get(8, 64), then read
        // back argv[0] pointer and return the arg count.
        let mut b = ModuleBuilder::new();
        let sizes = b.import_func("wasi_snapshot_preview1", "args_sizes_get", wasi_sig(2));
        let get = b.import_func("wasi_snapshot_preview1", "args_get", wasi_sig(2));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(0).i32_const(4).call(sizes).drop_();
            f.i32_const(8).i32_const(64).call(get).drop_();
            f.i32_const(0).i32_load(0); // argc
        });
        b.export_func("main", f);

        let (kernel, pid) = kernel_and_pid();
        let ctx = WasiCtx::new(kernel, pid).arg("svc").arg("--port").arg("80");
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        assert_eq!(inst.invoke("main", &[]).unwrap(), vec![Value::I32(3)]);
        // argv buffer holds NUL-terminated strings.
        let m = inst.memory().unwrap();
        let argv0_ptr = m.load_u32(8, 0).unwrap();
        assert_eq!(m.read_bytes(argv0_ptr, 4).unwrap(), b"svc\0");
    }

    #[test]
    fn environ_written() {
        let mut b = ModuleBuilder::new();
        let sizes = b.import_func("wasi_snapshot_preview1", "environ_sizes_get", wasi_sig(2));
        let get = b.import_func("wasi_snapshot_preview1", "environ_get", wasi_sig(2));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.i32_const(0).i32_const(4).call(sizes).drop_();
            f.i32_const(8).i32_const(64).call(get).drop_();
        });
        b.export_func("go", f);
        let (kernel, pid) = kernel_and_pid();
        let ctx = WasiCtx::new(kernel, pid).env("PATH", "/bin");
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        inst.invoke("go", &[]).unwrap();
        let m = inst.memory().unwrap();
        let ptr = m.load_u32(8, 0).unwrap();
        assert_eq!(m.read_bytes(ptr, 10).unwrap(), b"PATH=/bin\0");
    }

    #[test]
    fn proc_exit_unwinds_and_records() {
        let mut b = ModuleBuilder::new();
        let exit = b.import_func(
            "wasi_snapshot_preview1",
            "proc_exit",
            FuncType::new(vec![ValType::I32], vec![]),
        );
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.i32_const(3).call(exit);
        });
        b.export_func("_start", f);
        let (kernel, pid) = kernel_and_pid();
        let ctx = WasiCtx::new(kernel, pid);
        let exit_probe = ctx.state.clone();
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        assert_eq!(inst.invoke("_start", &[]), Err(Trap::Exit(3)));
        assert_eq!(exit_probe.borrow().exit_code, Some(3));
    }

    #[test]
    fn path_open_and_read_from_preopen() {
        let (kernel, pid) = kernel_and_pid();
        kernel
            .create_file(
                "/containers/c1/rootfs/data/config.txt",
                FileContent::Bytes(bytelite::Bytes::from_static(b"threads=4")),
            )
            .unwrap();

        // Guest: open "config.txt" under preopen fd 3, read 9 bytes to
        // address 128, return nread.
        let mut b = ModuleBuilder::new();
        let path_open = b.import_func("wasi_snapshot_preview1", "path_open", {
            let mut params = vec![ValType::I32; 9];
            params[1] = ValType::I32;
            FuncType::new(params, vec![ValType::I32])
        });
        let fd_read = b.import_func("wasi_snapshot_preview1", "fd_read", wasi_sig(4));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        b.data(0, &b"config.txt"[..]);
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            // path_open(3, 0, 0, 10, 0, 0, 0, 0, 64)
            f.i32_const(3)
                .i32_const(0)
                .i32_const(0)
                .i32_const(10)
                .i32_const(0)
                .i32_const(0)
                .i32_const(0)
                .i32_const(0)
                .i32_const(64)
                .call(path_open)
                .drop_();
            // iovec at 72: { ptr: 128, len: 64 }
            f.i32_const(72).i32_const(128).i32_store(0);
            f.i32_const(76).i32_const(64).i32_store(0);
            // fd_read(fd@64, 72, 1, 80)
            f.i32_const(64).i32_load(0);
            f.i32_const(72).i32_const(1).i32_const(80).call(fd_read).drop_();
            // hack: fd_read expects fd first — rebuild properly below.
            f.i32_const(80).i32_load(0);
        });
        // The above sequence pushes the fd then the other args — matching
        // fd_read(fd, iovs, iovs_len, nread).
        b.export_func("main", f);

        let ctx = WasiCtx::new(kernel.clone(), pid).preopen("/data", "/containers/c1/rootfs/data");
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("main", &[]).unwrap();
        assert_eq!(out, vec![Value::I32(9)]);
        assert_eq!(inst.memory().unwrap().read_bytes(128, 9).unwrap(), b"threads=4");
        // The read charged the file into the page cache.
        let file = kernel.lookup("/containers/c1/rootfs/data/config.txt").unwrap();
        assert!(kernel.file_cached(file).unwrap() > 0);
    }

    #[test]
    fn clock_and_random_are_deterministic() {
        let mut b = ModuleBuilder::new();
        let clock = b.import_func("wasi_snapshot_preview1", "clock_time_get", {
            FuncType::new(vec![ValType::I32, ValType::I64, ValType::I32], vec![ValType::I32])
        });
        let random = b.import_func("wasi_snapshot_preview1", "random_get", wasi_sig(2));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![ValType::I64]), |f| {
            f.i32_const(0).i64_const(0).i32_const(16).call(clock).drop_();
            f.i32_const(32).i32_const(8).call(random).drop_();
            f.i32_const(16).i64_load(0);
        });
        b.export_func("main", f);
        let (kernel, pid) = kernel_and_pid();
        kernel.advance(simkernel::Duration::from_secs(5));
        let ctx = WasiCtx::new(kernel, pid).random_seed(42);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("main", &[]).unwrap();
        assert_eq!(out, vec![Value::I64(5_000_000_000)]);
        let r1 = inst.memory().unwrap().load_u64(32, 0).unwrap();
        assert_ne!(r1, 0, "random bytes written");
    }

    #[test]
    fn fd_write_to_stderr() {
        let mut b = ModuleBuilder::new();
        let fd_write = b.import_func("wasi_snapshot_preview1", "fd_write", wasi_sig(4));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        b.data(0, &b"err!"[..]);
        b.data(8, &[0u8, 0, 0, 0, 4, 0, 0, 0][..]);
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.i32_const(2).i32_const(8).i32_const(1).i32_const(16).call(fd_write).drop_();
        });
        b.export_func("go", f);
        let (kernel, pid) = kernel_and_pid();
        let ctx = WasiCtx::new(kernel, pid);
        let stderr = ctx.stderr_handle();
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        inst.invoke("go", &[]).unwrap();
        assert_eq!(&*stderr.borrow(), b"err!");
    }

    #[test]
    fn bad_fd_errors() {
        let mut b = ModuleBuilder::new();
        let fd_write = b.import_func("wasi_snapshot_preview1", "fd_write", wasi_sig(4));
        let fd_close = b.import_func("wasi_snapshot_preview1", "fd_close", wasi_sig(1));
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(99).i32_const(0).i32_const(0).i32_const(0).call(fd_write);
            f.i32_const(99).call(fd_close);
            f.op(wasm_core::Instruction::I32Add);
        });
        b.export_func("go", f);
        let (kernel, pid) = kernel_and_pid();
        let ctx = WasiCtx::new(kernel, pid);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        // badf(8) + badf(8) = 16
        assert_eq!(inst.invoke("go", &[]).unwrap(), vec![Value::I32(16)]);
    }
}
