//! # wasi-sys — a WASI preview-1 subset over the simulated kernel
//!
//! Implements the system-interface surface the paper's integration work
//! needed (§III-C "WASI Argument Handling"): command-line arguments,
//! environment variables, pre-opened directories, stdio, clock, randomness
//! and `proc_exit` — enough to run containerized WASI microservices.
//!
//! File access resolves against the [`simkernel`] VFS **on behalf of the
//! container process**, so page-cache faults from `path_open`/`fd_read` are
//! charged to the container's cgroup exactly as they would be on Linux.
//!
//! ```
//! use std::sync::Arc;
//! use simkernel::{Kernel, KernelConfig};
//! use wasi_sys::WasiCtx;
//! use wasm_core::{Instance, InstanceConfig, ModuleBuilder, FuncType, ValType};
//!
//! // A module that writes "hi\n" to stdout via fd_write.
//! let mut b = ModuleBuilder::new();
//! let fd_write = b.import_func(
//!     "wasi_snapshot_preview1",
//!     "fd_write",
//!     FuncType::new(vec![ValType::I32; 4], vec![ValType::I32]),
//! );
//! let mem = b.memory(1, None);
//! b.export_memory("memory", mem);
//! b.data(0, &b"hi\n"[..]);
//! b.data(8, &[0u8, 0, 0, 0, 3, 0, 0, 0][..]); // iovec { ptr: 0, len: 3 }
//! let start = b.func(FuncType::new(vec![], vec![]), |f| {
//!     f.i32_const(1).i32_const(8).i32_const(1).i32_const(16).call(fd_write).drop_();
//! });
//! b.export_func("_start", start);
//!
//! let kernel = Kernel::boot(KernelConfig::default());
//! let pid = kernel.spawn("svc", Kernel::ROOT_CGROUP).unwrap();
//! let ctx = WasiCtx::new(kernel, pid).arg("svc");
//! let stdout = ctx.stdout_handle();
//! let mut inst = Instance::instantiate(
//!     Arc::new(b.build()),
//!     ctx.into_imports(),
//!     InstanceConfig::default(),
//! ).unwrap();
//! inst.run_start().unwrap();
//! assert_eq!(&*stdout.borrow(), b"hi\n");
//! ```

pub mod ctx;
pub mod errno;
mod host;

pub use ctx::{StdioHandle, WasiCtx};
pub use errno::Errno;
