//! Property tests for the WASI layer: argument/environment marshalling
//! round-trips through guest memory for arbitrary inputs, and fd-table
//! operations never corrupt state.

use std::sync::Arc;

use proptest::prelude::*;
use simkernel::{Kernel, KernelConfig};
use wasi_sys::WasiCtx;
use wasm_core::{FuncType, Instance, InstanceConfig, ModuleBuilder, ValType};

/// A guest that calls args_sizes_get + args_get and leaves the raw argv
/// buffer in memory for the host to inspect.
fn args_probe_module() -> Arc<wasm_core::Module> {
    let mut b = ModuleBuilder::new();
    let sizes = b.import_func(
        "wasi_snapshot_preview1",
        "args_sizes_get",
        FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
    );
    let get = b.import_func(
        "wasi_snapshot_preview1",
        "args_get",
        FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
    );
    let mem = b.memory(4, None);
    b.export_memory("memory", mem);
    let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
        f.i32_const(0).i32_const(4).call(sizes).drop_();
        f.i32_const(16).i32_const(4096).call(get).drop_();
        f.i32_const(0).i32_load(0); // argc
    });
    b.export_func("probe", f);
    Arc::new(b.build())
}

fn arg_strategy() -> impl Strategy<Value = String> {
    // Arguments without NUL (the C ABI boundary) up to 40 chars, including
    // multibyte characters.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('0', '9'),
            Just('-'),
            Just('/'),
            Just('é'),
            Just('世'),
        ],
        0..40,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn argv_roundtrips_for_arbitrary_arguments(
        args in proptest::collection::vec(arg_strategy(), 1..8)
    ) {
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let ctx = WasiCtx::new(kernel, pid).args(args.clone());
        let mut inst = Instance::instantiate(
            args_probe_module(),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[]).unwrap();
        prop_assert_eq!(out[0], wasm_core::Value::I32(args.len() as i32));
        // Walk the argv pointers and compare each NUL-terminated string.
        let mem = inst.memory().unwrap();
        for (i, expected) in args.iter().enumerate() {
            let ptr = mem.load_u32(16 + 4 * i as u32, 0).unwrap();
            let bytes = mem.read_bytes(ptr, expected.len() as u32 + 1).unwrap();
            prop_assert_eq!(&bytes[..expected.len()], expected.as_bytes());
            prop_assert_eq!(bytes[expected.len()], 0, "NUL terminator");
        }
    }

    #[test]
    fn environ_sizes_are_consistent(
        env in proptest::collection::vec(("[A-Z_]{1,12}", arg_strategy()), 0..6)
    ) {
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let expected_buf: u32 =
            env.iter().map(|(k, v)| (k.len() + v.len() + 2) as u32).sum();
        let count = env.len() as u32;

        let mut b = ModuleBuilder::new();
        let sizes = b.import_func(
            "wasi_snapshot_preview1",
            "environ_sizes_get",
            FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
        );
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![ValType::I64]), |f| {
            f.i32_const(0).i32_const(8).call(sizes).drop_();
            // pack count and buf size into one i64
            f.i32_const(0)
                .i32_load(0)
                .op(wasm_core::Instruction::I64ExtendI32U)
                .i64_const(32)
                .op(wasm_core::Instruction::I64Shl);
            f.i32_const(8).i32_load(0).op(wasm_core::Instruction::I64ExtendI32U);
            f.op(wasm_core::Instruction::I64Or);
        });
        b.export_func("probe", f);
        let ctx = WasiCtx::new(kernel, pid).envs(env);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[]).unwrap();
        let packed = out[0].as_i64().unwrap() as u64;
        prop_assert_eq!((packed >> 32) as u32, count);
        prop_assert_eq!(packed as u32, expected_buf);
    }

    #[test]
    fn random_get_fills_exactly_len_bytes(len in 0u32..512, seed in any::<u64>()) {
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let mut b = ModuleBuilder::new();
        let random = b.import_func(
            "wasi_snapshot_preview1",
            "random_get",
            FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
        );
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.i32_const(64).local_get(0).call(random);
        });
        b.export_func("probe", f);
        let ctx = WasiCtx::new(kernel, pid).random_seed(seed);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[wasm_core::Value::I32(len as i32)]).unwrap();
        prop_assert_eq!(out[0], wasm_core::Value::I32(0), "errno success");
        // Bytes beyond the requested length stay zero.
        let mem = inst.memory().unwrap();
        let after = mem.read_bytes(64 + len, 16).unwrap();
        prop_assert!(after.iter().all(|b| *b == 0));
    }
}
