//! Property tests for the WASI layer: argument/environment marshalling
//! round-trips through guest memory for arbitrary inputs, and fd-table
//! operations never corrupt state. Runs on the offline `simkernel::prop`
//! harness.

use std::sync::Arc;

use simkernel::prop::check;
use simkernel::rng::SplitMix64;
use simkernel::{Kernel, KernelConfig};
use wasi_sys::WasiCtx;
use wasm_core::{FuncType, Instance, InstanceConfig, ModuleBuilder, ValType};

/// A guest that calls args_sizes_get + args_get and leaves the raw argv
/// buffer in memory for the host to inspect.
fn args_probe_module() -> Arc<wasm_core::Module> {
    let mut b = ModuleBuilder::new();
    let sizes = b.import_func(
        "wasi_snapshot_preview1",
        "args_sizes_get",
        FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
    );
    let get = b.import_func(
        "wasi_snapshot_preview1",
        "args_get",
        FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
    );
    let mem = b.memory(4, None);
    b.export_memory("memory", mem);
    let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
        f.i32_const(0).i32_const(4).call(sizes).drop_();
        f.i32_const(16).i32_const(4096).call(get).drop_();
        f.i32_const(0).i32_load(0); // argc
    });
    b.export_func("probe", f);
    Arc::new(b.build())
}

/// Arguments without NUL (the C ABI boundary) up to 40 chars, including
/// multibyte characters.
fn gen_arg(g: &mut SplitMix64) -> String {
    const CHARS: &[char] = &['a', 'f', 'k', 'p', 'z', '0', '4', '9', '-', '/', 'é', '世'];
    g.string_upto(CHARS, 0, 40)
}

#[test]
fn argv_roundtrips_for_arbitrary_arguments() {
    check("argv_roundtrips_for_arbitrary_arguments", 64, |g| {
        let args: Vec<String> = (0..1 + g.index(7)).map(|_| gen_arg(g)).collect();
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let ctx = WasiCtx::new(kernel, pid).args(args.clone());
        let mut inst = Instance::instantiate(
            args_probe_module(),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[]).unwrap();
        assert_eq!(out[0], wasm_core::Value::I32(args.len() as i32));
        // Walk the argv pointers and compare each NUL-terminated string.
        let mem = inst.memory().unwrap();
        for (i, expected) in args.iter().enumerate() {
            let ptr = mem.load_u32(16 + 4 * i as u32, 0).unwrap();
            let bytes = mem.read_bytes(ptr, expected.len() as u32 + 1).unwrap();
            assert_eq!(&bytes[..expected.len()], expected.as_bytes());
            assert_eq!(bytes[expected.len()], 0, "NUL terminator");
        }
    });
}

#[test]
fn environ_sizes_are_consistent() {
    check("environ_sizes_are_consistent", 64, |g| {
        const KEY: &[char] = &['A', 'G', 'M', 'T', 'Z', '_'];
        let env: Vec<(String, String)> =
            (0..g.index(6)).map(|_| (g.string_upto(KEY, 1, 13), gen_arg(g))).collect();
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let expected_buf: u32 = env.iter().map(|(k, v)| (k.len() + v.len() + 2) as u32).sum();
        let count = env.len() as u32;

        let mut b = ModuleBuilder::new();
        let sizes = b.import_func(
            "wasi_snapshot_preview1",
            "environ_sizes_get",
            FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
        );
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![], vec![ValType::I64]), |f| {
            f.i32_const(0).i32_const(8).call(sizes).drop_();
            // pack count and buf size into one i64
            f.i32_const(0)
                .i32_load(0)
                .op(wasm_core::Instruction::I64ExtendI32U)
                .i64_const(32)
                .op(wasm_core::Instruction::I64Shl);
            f.i32_const(8).i32_load(0).op(wasm_core::Instruction::I64ExtendI32U);
            f.op(wasm_core::Instruction::I64Or);
        });
        b.export_func("probe", f);
        let ctx = WasiCtx::new(kernel, pid).envs(env);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[]).unwrap();
        let packed = out[0].as_i64().unwrap() as u64;
        assert_eq!((packed >> 32) as u32, count);
        assert_eq!(packed as u32, expected_buf);
    });
}

#[test]
fn random_get_fills_exactly_len_bytes() {
    check("random_get_fills_exactly_len_bytes", 64, |g| {
        let len = g.range_u64(0, 512) as u32;
        let seed = g.next_u64();
        let kernel = Kernel::boot(KernelConfig::default());
        let pid = kernel.spawn("t", Kernel::ROOT_CGROUP).unwrap();
        let mut b = ModuleBuilder::new();
        let random = b.import_func(
            "wasi_snapshot_preview1",
            "random_get",
            FuncType::new(vec![ValType::I32; 2], vec![ValType::I32]),
        );
        let mem = b.memory(1, None);
        b.export_memory("memory", mem);
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.i32_const(64).local_get(0).call(random);
        });
        b.export_func("probe", f);
        let ctx = WasiCtx::new(kernel, pid).random_seed(seed);
        let mut inst = Instance::instantiate(
            Arc::new(b.build()),
            ctx.into_imports(),
            InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("probe", &[wasm_core::Value::I32(len as i32)]).unwrap();
        assert_eq!(out[0], wasm_core::Value::I32(0), "errno success");
        // Bytes beyond the requested length stay zero.
        let mem = inst.memory().unwrap();
        let after = mem.read_bytes(64 + len, 16).unwrap();
        assert!(after.iter().all(|b| *b == 0));
    });
}
