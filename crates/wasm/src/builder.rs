//! Programmatic module construction — the workspace's "compiler".
//!
//! There is no C toolchain in this offline reproduction, so the workloads
//! crate assembles its modules (the paper's minimal-C-microservice
//! equivalent and the larger §IV-D/F variants) with this builder, encodes
//! them to real binaries, and ships those binaries through the container
//! stack where the engines decode, validate and execute them.

use std::collections::HashMap;

use bytelite::Bytes;

use crate::encode::encode_module;
use crate::instr::{write_instr, BrTableData, Instruction, MemArg};
use crate::module::{
    ConstExpr, DataSegment, ElementSegment, Export, ExportDesc, FuncBody, Global, Import,
    ImportDesc, Module,
};
use crate::types::{BlockType, FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// Builds a [`Module`] incrementally.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
    type_dedup: HashMap<FuncType, u32>,
}

impl ModuleBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a function type, returning its index.
    pub fn type_idx(&mut self, ft: FuncType) -> u32 {
        if let Some(&i) = self.type_dedup.get(&ft) {
            return i;
        }
        let i = self.module.types.len() as u32;
        self.module.types.push(ft.clone());
        self.type_dedup.insert(ft, i);
        i
    }

    /// Import a function. Must precede all local function definitions
    /// (imports come first in the index space). Returns the function index.
    pub fn import_func(&mut self, module: &str, name: &str, ft: FuncType) -> u32 {
        assert!(self.module.funcs.is_empty(), "imports must be declared before local functions");
        let t = self.type_idx(ft);
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            desc: ImportDesc::Func(t),
        });
        self.module.num_imported_funcs() - 1
    }

    /// Declare a memory; returns its index (MVP: must be 0).
    pub fn memory(&mut self, min_pages: u32, max_pages: Option<u32>) -> u32 {
        let idx = self.module.memories.len() as u32;
        self.module.memories.push(MemoryType { limits: Limits::new(min_pages, max_pages) });
        idx
    }

    /// Declare a funcref table; returns its index.
    pub fn table(&mut self, min: u32, max: Option<u32>) -> u32 {
        let idx = self.module.tables.len() as u32;
        self.module.tables.push(TableType { limits: Limits::new(min, max) });
        idx
    }

    /// Define a global; returns its index.
    pub fn global(&mut self, value: ValType, mutable: bool, init: ConstExpr) -> u32 {
        let idx = self.module.num_imported_globals() + self.module.globals.len() as u32;
        self.module.globals.push(Global { ty: GlobalType { value, mutable }, init });
        idx
    }

    /// Define a function with the given type; the closure fills its body.
    /// Returns the function's index in the combined space.
    pub fn func(&mut self, ft: FuncType, body: impl FnOnce(&mut FuncBuilder)) -> u32 {
        let param_count = ft.params.len() as u32;
        let t = self.type_idx(ft);
        let mut fb = FuncBuilder::new(param_count);
        body(&mut fb);
        let idx = self.module.num_imported_funcs() + self.module.funcs.len() as u32;
        self.module.funcs.push(t);
        self.module.bodies.push(fb.finish());
        idx
    }

    pub fn export_func(&mut self, name: &str, idx: u32) -> &mut Self {
        self.module.exports.push(Export { name: name.to_string(), desc: ExportDesc::Func(idx) });
        self
    }

    pub fn export_memory(&mut self, name: &str, idx: u32) -> &mut Self {
        self.module.exports.push(Export { name: name.to_string(), desc: ExportDesc::Memory(idx) });
        self
    }

    pub fn export_global(&mut self, name: &str, idx: u32) -> &mut Self {
        self.module.exports.push(Export { name: name.to_string(), desc: ExportDesc::Global(idx) });
        self
    }

    pub fn start(&mut self, func_idx: u32) -> &mut Self {
        self.module.start = Some(func_idx);
        self
    }

    /// Add an active data segment at a constant i32 offset.
    pub fn data(&mut self, offset: i32, bytes: impl Into<Bytes>) -> &mut Self {
        self.module.data.push(DataSegment {
            memory: 0,
            offset: ConstExpr::I32(offset),
            bytes: bytes.into(),
        });
        self
    }

    /// Add an active element segment at a constant i32 offset.
    pub fn elem(&mut self, offset: i32, funcs: Vec<u32>) -> &mut Self {
        self.module.elements.push(ElementSegment {
            table: 0,
            offset: ConstExpr::I32(offset),
            funcs,
        });
        self
    }

    /// Attach a custom section (e.g. padding to model debug info bloat).
    pub fn custom(&mut self, name: &str, payload: impl Into<Bytes>) -> &mut Self {
        self.module.customs.push((name.to_string(), payload.into()));
        self
    }

    /// Finish, returning the module AST.
    pub fn build(self) -> Module {
        self.module
    }

    /// Finish, returning the encoded binary.
    pub fn build_bytes(self) -> Vec<u8> {
        encode_module(&self.module)
    }
}

/// Builds one function body.
#[derive(Debug)]
pub struct FuncBuilder {
    param_count: u32,
    locals: Vec<(u32, ValType)>,
    instrs: Vec<Instruction>,
}

impl FuncBuilder {
    fn new(param_count: u32) -> Self {
        FuncBuilder { param_count, locals: Vec::new(), instrs: Vec::new() }
    }

    /// Declare a local; returns its index (after the parameters).
    pub fn local(&mut self, ty: ValType) -> u32 {
        let idx = self.param_count + self.locals.iter().map(|(n, _)| n).sum::<u32>();
        // Compress consecutive same-type declarations, as compilers do.
        if let Some(last) = self.locals.last_mut() {
            if last.1 == ty {
                last.0 += 1;
                return idx;
            }
        }
        self.locals.push((1, ty));
        idx
    }

    /// Append a raw instruction.
    pub fn op(&mut self, i: Instruction) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // Sugar for the most common instructions.

    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.op(Instruction::I32Const(v))
    }

    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.op(Instruction::I64Const(v))
    }

    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.op(Instruction::F64Const(v))
    }

    pub fn local_get(&mut self, i: u32) -> &mut Self {
        self.op(Instruction::LocalGet(i))
    }

    pub fn local_set(&mut self, i: u32) -> &mut Self {
        self.op(Instruction::LocalSet(i))
    }

    pub fn local_tee(&mut self, i: u32) -> &mut Self {
        self.op(Instruction::LocalTee(i))
    }

    pub fn global_get(&mut self, i: u32) -> &mut Self {
        self.op(Instruction::GlobalGet(i))
    }

    pub fn global_set(&mut self, i: u32) -> &mut Self {
        self.op(Instruction::GlobalSet(i))
    }

    pub fn call(&mut self, f: u32) -> &mut Self {
        self.op(Instruction::Call(f))
    }

    pub fn call_indirect(&mut self, type_idx: u32) -> &mut Self {
        self.op(Instruction::CallIndirect { type_idx, table_idx: 0 })
    }

    pub fn drop_(&mut self) -> &mut Self {
        self.op(Instruction::Drop)
    }

    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.op(Instruction::Br(depth))
    }

    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.op(Instruction::BrIf(depth))
    }

    pub fn br_table(&mut self, targets: Vec<u32>, default: u32) -> &mut Self {
        self.op(Instruction::BrTable(Box::new(BrTableData { targets, default })))
    }

    pub fn return_(&mut self) -> &mut Self {
        self.op(Instruction::Return)
    }

    pub fn i32_load(&mut self, offset: u32) -> &mut Self {
        self.op(Instruction::I32Load(MemArg { align: 2, offset }))
    }

    pub fn i32_store(&mut self, offset: u32) -> &mut Self {
        self.op(Instruction::I32Store(MemArg { align: 2, offset }))
    }

    pub fn i64_load(&mut self, offset: u32) -> &mut Self {
        self.op(Instruction::I64Load(MemArg { align: 3, offset }))
    }

    pub fn i64_store(&mut self, offset: u32) -> &mut Self {
        self.op(Instruction::I64Store(MemArg { align: 3, offset }))
    }

    /// Structured block: the closure fills the body; `end` is implicit.
    pub fn block(&mut self, bt: BlockType, body: impl FnOnce(&mut FuncBuilder)) -> &mut Self {
        self.op(Instruction::Block(bt));
        body(self);
        self.op(Instruction::End)
    }

    /// Structured loop: the closure fills the body; `end` is implicit.
    pub fn loop_(&mut self, bt: BlockType, body: impl FnOnce(&mut FuncBuilder)) -> &mut Self {
        self.op(Instruction::Loop(bt));
        body(self);
        self.op(Instruction::End)
    }

    /// Structured if/else; either arm closure may be empty.
    pub fn if_else(
        &mut self,
        bt: BlockType,
        then: impl FnOnce(&mut FuncBuilder),
        els: impl FnOnce(&mut FuncBuilder),
    ) -> &mut Self {
        self.op(Instruction::If(bt));
        then(self);
        self.op(Instruction::Else);
        els(self);
        self.op(Instruction::End)
    }

    fn finish(mut self) -> FuncBody {
        self.instrs.push(Instruction::End);
        let mut code = Vec::new();
        for i in &self.instrs {
            write_instr(&mut code, i);
        }
        FuncBody { locals: self.locals, code: Bytes::from(code) }
    }
}

/// A tiny WASI "microservice" module used across the workspace's tests: it
/// writes `message` to stdout via `fd_write` and returns. Kept here (next to
/// the builder it showcases) so integration tests in higher crates don't
/// each carry a hand-rolled copy.
pub fn demo_wasi_module(message: &str) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let fd_write = b.import_func(
        "wasi_snapshot_preview1",
        "fd_write",
        FuncType::new(vec![ValType::I32; 4], vec![ValType::I32]),
    );
    let mem = b.memory(1, None);
    b.export_memory("memory", mem);
    let msg = message.as_bytes().to_vec();
    let len = msg.len() as i32;
    b.data(64, msg);
    let mut iov = Vec::new();
    iov.extend_from_slice(&64i32.to_le_bytes());
    iov.extend_from_slice(&len.to_le_bytes());
    b.data(16, iov);
    let start = b.func(FuncType::new(vec![], vec![]), |f| {
        f.i32_const(1).i32_const(16).i32_const(1).i32_const(32).call(fd_write).drop_();
    });
    b.export_func("_start", start);
    b.build_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_module;

    #[test]
    fn build_and_decode_add() {
        let mut b = ModuleBuilder::new();
        let ft = FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]);
        let add = b.func(ft, |f| {
            f.local_get(0).local_get(1).op(Instruction::I32Add);
        });
        b.export_func("add", add);
        let bytes = b.build_bytes();
        let m = decode_module(bytes).unwrap();
        assert_eq!(m.exported_func("add"), Some(0));
        assert_eq!(m.bodies[0].code.as_ref(), &[0x20, 0, 0x20, 1, 0x6a, 0x0b]);
    }

    #[test]
    fn imports_precede_locals() {
        let mut b = ModuleBuilder::new();
        let imp = b.import_func("env", "log", FuncType::new(vec![ValType::I32], vec![]));
        let f = b.func(FuncType::new(vec![], vec![]), |fb| {
            fb.i32_const(1).call(imp);
        });
        assert_eq!(imp, 0);
        assert_eq!(f, 1);
        let m = b.build();
        assert_eq!(m.num_imported_funcs(), 1);
    }

    #[test]
    #[should_panic(expected = "imports must be declared")]
    fn late_import_panics() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![], vec![]), |_| {});
        b.import_func("env", "f", FuncType::new(vec![], vec![]));
    }

    #[test]
    fn type_dedup() {
        let mut b = ModuleBuilder::new();
        let ft = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
        b.func(ft.clone(), |f| {
            f.local_get(0);
        });
        b.func(ft, |f| {
            f.local_get(0);
        });
        let m = b.build();
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.funcs, vec![0, 0]);
    }

    #[test]
    fn locals_compressed() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![ValType::I32], vec![]), |f| {
            let a = f.local(ValType::I32);
            let c = f.local(ValType::I32);
            let d = f.local(ValType::F64);
            assert_eq!((a, c, d), (1, 2, 3));
        });
        let m = b.build();
        assert_eq!(m.bodies[0].locals, vec![(2, ValType::I32), (1, ValType::F64)]);
    }

    #[test]
    fn structured_control_helpers() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.i32_const(5);
            });
        });
        let m = b.build();
        // block i32 / i32.const 5 / end / end
        assert_eq!(m.bodies[0].code.as_ref(), &[0x02, 0x7f, 0x41, 5, 0x0b, 0x0b]);
    }

    #[test]
    fn data_and_memory() {
        let mut b = ModuleBuilder::new();
        let mem = b.memory(1, Some(2));
        b.export_memory("memory", mem);
        b.data(16, &b"hi"[..]);
        let m = decode_module(b.build_bytes()).unwrap();
        assert_eq!(m.memories.len(), 1);
        assert_eq!(m.data[0].bytes.as_ref(), b"hi");
        assert_eq!(m.data[0].offset, ConstExpr::I32(16));
    }
}
