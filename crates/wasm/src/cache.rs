//! Process-wide content-addressed module-artifact cache.
//!
//! Every simulated engine decodes + validates the same workload module
//! bytes for every container it starts. On the *simulated* side that work
//! is correctly charged per container (each container's DES task pays the
//! decode/validate steps), but on the *host* side re-decoding an identical
//! module hundreds of times per experiment grid cell is pure waste. This
//! cache shares one decoded, validated [`Module`] per distinct byte string
//! across all clusters and worker threads in the process.
//!
//! Keys are FNV-1a content hashes; each bucket stores the full original
//! bytes so hash collisions degrade to byte comparison, never to a wrong
//! module. Hit/miss counters are exposed through [`CacheStats`] so the
//! harness can assert cache effectiveness (the experiment grids reuse a
//! handful of workload images across hundreds of containers, so hit rates
//! above 90% are expected and tested).
//!
//! The map is sharded into [`STRIPES`] independently locked stripes keyed
//! by the low bits of the content hash, so parallel grid workers touching
//! different modules never serialize on one global mutex. The (rare)
//! occasions two workers *do* collide on a stripe are counted in
//! [`CacheStats::lock_contentions`] — a driver-scaling canary the harness
//! can watch.
//!
//! Modules returned by [`ArtifactCache::get_or_decode`] are **validated**:
//! callers may instantiate them through
//! [`Instance::instantiate_prevalidated`](crate::Instance::instantiate_prevalidated)
//! to skip the per-instance re-validation pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use bytelite::Bytes;

use crate::error::{DecodeError, ValidationError};
use crate::module::Module;

/// FNV-1a over the module bytes: cheap, deterministic, good dispersion for
/// content addressing (the same scheme the simulated Wasmtime code cache
/// uses on the DES side).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a module could not enter the cache.
#[derive(Debug)]
pub enum ArtifactError {
    Decode(DecodeError),
    Invalid(ValidationError),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Decode(e) => write!(f, "module failed to decode: {e}"),
            ArtifactError::Invalid(e) => write!(f, "module failed validation: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Times a worker found its stripe's lock already held and had to
    /// wait. Zero in serial runs; should stay near zero in parallel ones.
    pub lock_contentions: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock stripes in the cache map. A power of two so stripe selection is a
/// mask of the content hash; 16 is comfortably above any worker count the
/// harness spawns.
pub const STRIPES: usize = 16;

type Shard = HashMap<u64, Vec<(Bytes, Arc<Module>)>>;

/// A content-addressed map from module bytes to decoded+validated modules.
pub struct ArtifactCache {
    /// hash → entries with that hash, sharded by `hash & (STRIPES - 1)`.
    /// Collisions are resolved by comparing the stored bytes, so two
    /// distinct modules never alias.
    stripes: [Mutex<Shard>; STRIPES],
    hits: AtomicU64,
    misses: AtomicU64,
    contentions: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contentions: AtomicU64::new(0),
        }
    }
}

impl ArtifactCache {
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Lock the stripe owning `key`, counting the contended acquisitions.
    fn stripe(&self, key: u64) -> std::sync::MutexGuard<'_, Shard> {
        let m = &self.stripes[(key & (STRIPES as u64 - 1)) as usize];
        match m.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contentions.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// The process-wide cache shared by every engine and worker thread.
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::new)
    }

    /// Look up `bytes`, decoding and validating on first sight. Returns a
    /// shared handle to the one `Module` for this byte string.
    pub fn get_or_decode(&self, bytes: &Bytes) -> Result<Arc<Module>, ArtifactError> {
        let key = content_hash(bytes);
        if let Some(found) = self.lookup(key, bytes) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        // Decode outside the lock: misses are rare and decoding under the
        // lock would serialize every worker on the first cell of a grid.
        let module = crate::decode::decode_module(bytes.clone()).map_err(ArtifactError::Decode)?;
        crate::validate::validate_module(&module).map_err(ArtifactError::Invalid)?;
        let module = Arc::new(module);
        let mut shard = self.stripe(key);
        let bucket = shard.entry(key).or_default();
        // Another worker may have decoded the same bytes concurrently; keep
        // the first entry so every caller shares one Arc.
        if let Some((_, existing)) = bucket.iter().find(|(b, _)| b == bytes) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(existing));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        bucket.push((bytes.clone(), Arc::clone(&module)));
        Ok(module)
    }

    fn lookup(&self, key: u64, bytes: &Bytes) -> Option<Arc<Module>> {
        let shard = self.stripe(key);
        shard.get(&key)?.iter().find(|(b, _)| b == bytes).map(|(_, m)| Arc::clone(m))
    }

    /// Number of distinct modules cached.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|m| {
                let shard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                shard.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since construction (or [`reset_stats`]).
    ///
    /// [`reset_stats`]: ArtifactCache::reset_stats
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            lock_contentions: self.contentions.load(Ordering::Relaxed),
        }
    }

    /// Zero the hit/miss/contention counters (entries stay). Lets tests
    /// measure the hit rate of one workload phase in isolation.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.contentions.store(0, Ordering::Relaxed);
    }

    /// Drop all entries and counters.
    pub fn clear(&self) {
        for m in &self.stripes {
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::FuncType;
    use crate::ValType;

    fn module_bytes(marker: i32) -> Bytes {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(marker);
        });
        b.export_func("f", f);
        Bytes::from(crate::encode::encode_module(&b.build()))
    }

    #[test]
    fn same_bytes_share_one_module() {
        let cache = ArtifactCache::new();
        let bytes = module_bytes(7);
        let a = cache.get_or_decode(&bytes).unwrap();
        let b = cache.get_or_decode(&bytes.clone()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same bytes must yield the same Arc");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, lock_contentions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_bytes_get_distinct_entries() {
        let cache = ArtifactCache::new();
        let a = cache.get_or_decode(&module_bytes(1)).unwrap();
        let b = cache.get_or_decode(&module_bytes(2)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2, lock_contentions: 0 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalid_modules_are_not_cached() {
        let cache = ArtifactCache::new();
        let garbage = Bytes::from(&b"\x00asm\x01\x00\x00\x00\xff"[..]);
        assert!(cache.get_or_decode(&garbage).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let cache = ArtifactCache::new();
        let bytes = module_bytes(3);
        for _ in 0..10 {
            cache.get_or_decode(&bytes).unwrap();
        }
        assert!(cache.stats().hit_rate() >= 0.9);
        cache.reset_stats();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn striping_spreads_entries_and_counts_no_serial_contention() {
        let cache = ArtifactCache::new();
        // Enough distinct modules that at least two land on different
        // stripes (keys are content hashes, stripes the low 4 bits).
        let mut stripes_hit = std::collections::HashSet::new();
        for marker in 0..32 {
            let bytes = module_bytes(marker);
            stripes_hit.insert(content_hash(&bytes) & (STRIPES as u64 - 1));
            cache.get_or_decode(&bytes).unwrap();
        }
        assert!(stripes_hit.len() > 1, "32 hashes should span multiple stripes");
        assert_eq!(cache.len(), 32);
        // Single-threaded use never waits on a stripe lock.
        assert_eq!(cache.stats().lock_contentions, 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn parallel_lookups_share_entries_across_stripes() {
        let cache = ArtifactCache::new();
        let all: Vec<Bytes> = (0..8).map(module_bytes).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for bytes in &all {
                        cache.get_or_decode(bytes).unwrap();
                    }
                });
            }
        });
        // Exactly one miss per distinct module regardless of interleaving.
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().misses, 8);
        assert_eq!(cache.stats().hits, 4 * 8 - 8);
    }

    #[test]
    fn cached_modules_instantiate_prevalidated() {
        let cache = ArtifactCache::new();
        let module = cache.get_or_decode(&module_bytes(11)).unwrap();
        let mut inst = crate::Instance::instantiate_prevalidated(
            module,
            crate::Imports::new(),
            crate::InstanceConfig::default(),
        )
        .unwrap();
        let out = inst.invoke("f", &[]).unwrap();
        assert_eq!(out, vec![crate::Value::I32(11)]);
    }
}
