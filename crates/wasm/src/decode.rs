//! Binary decoder (spec §5): bytes → [`Module`].
//!
//! Function bodies are taken as zero-copy [`Bytes`] slices of the input so
//! that an in-place interpreter over a page-cache-shared module binary
//! allocates essentially nothing — the property the WAMR profile measures.

use bytelite::Bytes;

use crate::error::DecodeError;
use crate::instr::{read_instr, Instruction};
use crate::leb128;
use crate::module::{
    ConstExpr, DataSegment, ElementSegment, Export, ExportDesc, FuncBody, Global, Import,
    ImportDesc, Module,
};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

const MAGIC: &[u8; 4] = b"\0asm";
const VERSION: u32 = 1;

struct Reader {
    data: Bytes,
    pos: usize,
}

impl Reader {
    fn new(data: Bytes) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.data.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<Bytes, DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = self.data.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let (v, n) = leb128::read_u32(&self.data[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn valtype(&mut self) -> Result<ValType, DecodeError> {
        ValType::from_byte(self.byte()?)
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        match self.byte()? {
            0x00 => Ok(Limits::new(self.u32()?, None)),
            0x01 => {
                let min = self.u32()?;
                let max = self.u32()?;
                Ok(Limits::new(min, Some(max)))
            }
            other => Err(DecodeError::BadLimitsFlag(other)),
        }
    }

    fn table_type(&mut self) -> Result<TableType, DecodeError> {
        let elem = self.byte()?;
        if elem != 0x70 {
            return Err(DecodeError::Malformed(format!(
                "table element type must be funcref, got 0x{elem:02x}"
            )));
        }
        Ok(TableType { limits: self.limits()? })
    }

    fn global_type(&mut self) -> Result<GlobalType, DecodeError> {
        let value = self.valtype()?;
        let mutable = match self.byte()? {
            0x00 => false,
            0x01 => true,
            other => return Err(DecodeError::BadMutability(other)),
        };
        Ok(GlobalType { value, mutable })
    }

    /// A constant expression: one const-ish instruction followed by `end`.
    fn const_expr(&mut self) -> Result<ConstExpr, DecodeError> {
        let (instr, n) = read_instr(&self.data[self.pos..])?;
        self.pos += n;
        let expr = match instr {
            Instruction::I32Const(v) => ConstExpr::I32(v),
            Instruction::I64Const(v) => ConstExpr::I64(v),
            Instruction::F32Const(v) => ConstExpr::F32(v),
            Instruction::F64Const(v) => ConstExpr::F64(v),
            Instruction::GlobalGet(i) => ConstExpr::GlobalGet(i),
            other => {
                return Err(DecodeError::Malformed(format!(
                    "non-constant instruction in const expression: {other:?}"
                )))
            }
        };
        let (end, n) = read_instr(&self.data[self.pos..])?;
        self.pos += n;
        if end != Instruction::End {
            return Err(DecodeError::Malformed("const expression must end with `end`".into()));
        }
        Ok(expr)
    }
}

/// Decode a complete module binary.
pub fn decode_module(bytes: impl Into<Bytes>) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes.into());
    if r.take(4)?.as_ref() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(r.take(4)?.as_ref().try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }

    let mut m = Module::default();
    let mut last_section = 0u8;
    let mut func_types: Option<Vec<u32>> = None;

    while r.remaining() > 0 {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let body_start = r.pos;
        if id > 11 {
            return Err(DecodeError::UnknownSection(id));
        }
        if id != 0 {
            if id <= last_section {
                return Err(DecodeError::SectionOrder(id));
            }
            last_section = id;
        }
        match id {
            0 => {
                let end = body_start + size;
                if end > r.data.len() {
                    return Err(DecodeError::UnexpectedEof);
                }
                let name = r.name()?;
                // The name may (maliciously) extend past the declared
                // section size; that is a malformed section, not a panic.
                let payload =
                    r.take(end.checked_sub(r.pos).ok_or(DecodeError::SectionSizeMismatch {
                        declared: size as u32,
                        actual: (r.pos - body_start) as u32,
                    })?)?;
                m.customs.push((name, payload));
            }
            1 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let tag = r.byte()?;
                    if tag != 0x60 {
                        return Err(DecodeError::Malformed(format!(
                            "function type must begin with 0x60, got 0x{tag:02x}"
                        )));
                    }
                    let np = r.u32()?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(r.valtype()?);
                    }
                    let nr = r.u32()?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(r.valtype()?);
                    }
                    m.types.push(FuncType::new(params, results));
                }
            }
            2 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let module = r.name()?;
                    let name = r.name()?;
                    let desc = match r.byte()? {
                        0x00 => ImportDesc::Func(r.u32()?),
                        0x01 => ImportDesc::Table(r.table_type()?),
                        0x02 => ImportDesc::Memory(MemoryType { limits: r.limits()? }),
                        0x03 => ImportDesc::Global(r.global_type()?),
                        other => return Err(DecodeError::BadKind(other)),
                    };
                    m.imports.push(Import { module, name, desc });
                }
            }
            3 => {
                let count = r.u32()?;
                let mut v = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    v.push(r.u32()?);
                }
                func_types = Some(v);
            }
            4 => {
                let count = r.u32()?;
                for _ in 0..count {
                    m.tables.push(r.table_type()?);
                }
            }
            5 => {
                let count = r.u32()?;
                for _ in 0..count {
                    m.memories.push(MemoryType { limits: r.limits()? });
                }
            }
            6 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let ty = r.global_type()?;
                    let init = r.const_expr()?;
                    m.globals.push(Global { ty, init });
                }
            }
            7 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let name = r.name()?;
                    let desc = match r.byte()? {
                        0x00 => ExportDesc::Func(r.u32()?),
                        0x01 => ExportDesc::Table(r.u32()?),
                        0x02 => ExportDesc::Memory(r.u32()?),
                        0x03 => ExportDesc::Global(r.u32()?),
                        other => return Err(DecodeError::BadKind(other)),
                    };
                    m.exports.push(Export { name, desc });
                }
            }
            8 => {
                m.start = Some(r.u32()?);
            }
            9 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let table = r.u32()?;
                    let offset = r.const_expr()?;
                    let n = r.u32()?;
                    let mut funcs = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        funcs.push(r.u32()?);
                    }
                    m.elements.push(ElementSegment { table, offset, funcs });
                }
            }
            10 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let body_size = r.u32()? as usize;
                    let body_end = r.pos + body_size;
                    if body_end > r.data.len() {
                        return Err(DecodeError::UnexpectedEof);
                    }
                    let n_locals = r.u32()?;
                    let mut locals = Vec::with_capacity(n_locals as usize);
                    let mut total: u64 = 0;
                    for _ in 0..n_locals {
                        let count = r.u32()?;
                        let ty = r.valtype()?;
                        total += count as u64;
                        if total > 1_000_000 {
                            return Err(DecodeError::Malformed("too many locals".into()));
                        }
                        locals.push((count, ty));
                    }
                    if r.pos > body_end {
                        return Err(DecodeError::UnexpectedEof);
                    }
                    let code = r.take(body_end - r.pos)?;
                    if code.last() != Some(&0x0b) {
                        return Err(DecodeError::Malformed(
                            "function body must end with `end`".into(),
                        ));
                    }
                    m.bodies.push(FuncBody { locals, code });
                }
            }
            11 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let memory = r.u32()?;
                    let offset = r.const_expr()?;
                    let n = r.u32()? as usize;
                    let bytes = r.take(n)?;
                    m.data.push(DataSegment { memory, offset, bytes });
                }
            }
            _ => unreachable!("id checked above"),
        }
        let consumed = r.pos - body_start;
        if consumed != size {
            return Err(DecodeError::SectionSizeMismatch {
                declared: size as u32,
                actual: consumed as u32,
            });
        }
    }

    let funcs = func_types.unwrap_or_default();
    if funcs.len() != m.bodies.len() {
        return Err(DecodeError::FuncCodeMismatch {
            funcs: funcs.len() as u32,
            bodies: m.bodies.len() as u32,
        });
    }
    m.funcs = funcs;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny hand-assembled module: `(module (func (export "f") (result i32)
    /// i32.const 7))`.
    fn tiny() -> Vec<u8> {
        let mut b = vec![];
        b.extend_from_slice(b"\0asm");
        b.extend_from_slice(&1u32.to_le_bytes());
        // Type section: 1 type, () -> (i32).
        b.extend_from_slice(&[1, 5, 1, 0x60, 0, 1, 0x7f]);
        // Function section: 1 func of type 0.
        b.extend_from_slice(&[3, 2, 1, 0]);
        // Export section: "f" -> func 0.
        b.extend_from_slice(&[7, 5, 1, 1, b'f', 0, 0]);
        // Code section: one body: no locals, i32.const 7, end.
        b.extend_from_slice(&[10, 6, 1, 4, 0, 0x41, 7, 0x0b]);
        b
    }

    #[test]
    fn decode_tiny() {
        let m = decode_module(tiny()).unwrap();
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.types[0], FuncType::new(vec![], vec![ValType::I32]));
        assert_eq!(m.funcs, vec![0]);
        assert_eq!(m.exported_func("f"), Some(0));
        assert_eq!(m.bodies[0].code.as_ref(), &[0x41, 7, 0x0b]);
    }

    #[test]
    fn bad_magic() {
        assert_eq!(decode_module(&b"xasm\x01\0\0\0"[..]), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version() {
        let mut b = tiny();
        b[4] = 2;
        assert_eq!(decode_module(b), Err(DecodeError::BadVersion(2)));
    }

    #[test]
    fn section_order_enforced() {
        let mut b = vec![];
        b.extend_from_slice(b"\0asm");
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&[3, 2, 1, 0]); // function section first
        b.extend_from_slice(&[1, 5, 1, 0x60, 0, 1, 0x7f]); // then type: invalid
        assert_eq!(decode_module(b), Err(DecodeError::SectionOrder(1)));
    }

    #[test]
    fn size_mismatch_detected() {
        let mut b = tiny();
        // Inflate the declared size of the type section.
        b[9] = 6;
        assert!(matches!(
            decode_module(b),
            Err(DecodeError::SectionSizeMismatch { .. }) | Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn func_code_mismatch() {
        let mut b = vec![];
        b.extend_from_slice(b"\0asm");
        b.extend_from_slice(&1u32.to_le_bytes());
        b.extend_from_slice(&[1, 5, 1, 0x60, 0, 1, 0x7f]);
        b.extend_from_slice(&[3, 2, 1, 0]); // declares one function
                                            // no code section
        assert_eq!(decode_module(b), Err(DecodeError::FuncCodeMismatch { funcs: 1, bodies: 0 }));
    }

    #[test]
    fn truncated_module() {
        let mut b = tiny();
        b.truncate(b.len() - 2);
        assert!(decode_module(b).is_err());
    }

    #[test]
    fn empty_module_ok() {
        let mut b = vec![];
        b.extend_from_slice(b"\0asm");
        b.extend_from_slice(&1u32.to_le_bytes());
        let m = decode_module(b).unwrap();
        assert_eq!(m, Module::default());
    }

    #[test]
    fn custom_sections_preserved() {
        let mut b = vec![];
        b.extend_from_slice(b"\0asm");
        b.extend_from_slice(&1u32.to_le_bytes());
        // custom section: size 6, name "nm" (len 2), payload [1,2,3].
        b.extend_from_slice(&[0, 6, 2, b'n', b'm', 1, 2, 3]);
        let m = decode_module(b).unwrap();
        assert_eq!(m.customs.len(), 1);
        assert_eq!(m.customs[0].0, "nm");
        assert_eq!(m.customs[0].1.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn zero_copy_bodies() {
        let src = Bytes::from(tiny());
        let m = decode_module(src.clone()).unwrap();
        // The body is a slice of the original allocation, not a copy.
        let body_ptr = m.bodies[0].code.as_ref().as_ptr() as usize;
        let src_range = src.as_ref().as_ptr() as usize..src.as_ref().as_ptr() as usize + src.len();
        assert!(src_range.contains(&body_ptr));
    }
}
