//! Binary encoder: [`Module`] → bytes. Inverse of [`crate::decode`];
//! round-trip fidelity is enforced by property tests.

use crate::leb128;
use crate::module::{ConstExpr, ExportDesc, ImportDesc, Module};
use crate::types::{GlobalType, Limits, TableType};

fn write_name(out: &mut Vec<u8>, s: &str) {
    leb128::write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            leb128::write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            leb128::write_u32(out, l.min);
            leb128::write_u32(out, max);
        }
    }
}

fn write_table_type(out: &mut Vec<u8>, t: &TableType) {
    out.push(0x70);
    write_limits(out, &t.limits);
}

fn write_global_type(out: &mut Vec<u8>, g: &GlobalType) {
    out.push(g.value.byte());
    out.push(if g.mutable { 0x01 } else { 0x00 });
}

fn write_const_expr(out: &mut Vec<u8>, e: &ConstExpr) {
    use crate::instr::{write_instr, Instruction as I};
    let instr = match *e {
        ConstExpr::I32(v) => I::I32Const(v),
        ConstExpr::I64(v) => I::I64Const(v),
        ConstExpr::F32(v) => I::F32Const(v),
        ConstExpr::F64(v) => I::F64Const(v),
        ConstExpr::GlobalGet(i) => I::GlobalGet(i),
    };
    write_instr(out, &instr);
    write_instr(out, &I::End);
}

fn section(out: &mut Vec<u8>, id: u8, body: Vec<u8>) {
    if body.is_empty() {
        return;
    }
    out.push(id);
    leb128::write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

/// Encode a module to its binary representation.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&1u32.to_le_bytes());

    // Type section (1).
    if !m.types.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.types.len() as u32);
        for t in &m.types {
            b.push(0x60);
            leb128::write_u32(&mut b, t.params.len() as u32);
            for p in &t.params {
                b.push(p.byte());
            }
            leb128::write_u32(&mut b, t.results.len() as u32);
            for r in &t.results {
                b.push(r.byte());
            }
        }
        section(&mut out, 1, b);
    }

    // Import section (2).
    if !m.imports.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.imports.len() as u32);
        for imp in &m.imports {
            write_name(&mut b, &imp.module);
            write_name(&mut b, &imp.name);
            match &imp.desc {
                ImportDesc::Func(t) => {
                    b.push(0x00);
                    leb128::write_u32(&mut b, *t);
                }
                ImportDesc::Table(t) => {
                    b.push(0x01);
                    write_table_type(&mut b, t);
                }
                ImportDesc::Memory(mt) => {
                    b.push(0x02);
                    write_limits(&mut b, &mt.limits);
                }
                ImportDesc::Global(g) => {
                    b.push(0x03);
                    write_global_type(&mut b, g);
                }
            }
        }
        section(&mut out, 2, b);
    }

    // Function section (3).
    if !m.funcs.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.funcs.len() as u32);
        for t in &m.funcs {
            leb128::write_u32(&mut b, *t);
        }
        section(&mut out, 3, b);
    }

    // Table section (4).
    if !m.tables.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.tables.len() as u32);
        for t in &m.tables {
            write_table_type(&mut b, t);
        }
        section(&mut out, 4, b);
    }

    // Memory section (5).
    if !m.memories.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.memories.len() as u32);
        for mem in &m.memories {
            write_limits(&mut b, &mem.limits);
        }
        section(&mut out, 5, b);
    }

    // Global section (6).
    if !m.globals.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.globals.len() as u32);
        for g in &m.globals {
            write_global_type(&mut b, &g.ty);
            write_const_expr(&mut b, &g.init);
        }
        section(&mut out, 6, b);
    }

    // Export section (7).
    if !m.exports.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.exports.len() as u32);
        for e in &m.exports {
            write_name(&mut b, &e.name);
            match e.desc {
                ExportDesc::Func(i) => {
                    b.push(0x00);
                    leb128::write_u32(&mut b, i);
                }
                ExportDesc::Table(i) => {
                    b.push(0x01);
                    leb128::write_u32(&mut b, i);
                }
                ExportDesc::Memory(i) => {
                    b.push(0x02);
                    leb128::write_u32(&mut b, i);
                }
                ExportDesc::Global(i) => {
                    b.push(0x03);
                    leb128::write_u32(&mut b, i);
                }
            }
        }
        section(&mut out, 7, b);
    }

    // Start section (8).
    if let Some(start) = m.start {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, start);
        section(&mut out, 8, b);
    }

    // Element section (9).
    if !m.elements.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.elements.len() as u32);
        for e in &m.elements {
            leb128::write_u32(&mut b, e.table);
            write_const_expr(&mut b, &e.offset);
            leb128::write_u32(&mut b, e.funcs.len() as u32);
            for f in &e.funcs {
                leb128::write_u32(&mut b, *f);
            }
        }
        section(&mut out, 9, b);
    }

    // Code section (10).
    if !m.bodies.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.bodies.len() as u32);
        for body in &m.bodies {
            let mut fb = Vec::new();
            leb128::write_u32(&mut fb, body.locals.len() as u32);
            for (count, ty) in &body.locals {
                leb128::write_u32(&mut fb, *count);
                fb.push(ty.byte());
            }
            fb.extend_from_slice(&body.code);
            leb128::write_u32(&mut b, fb.len() as u32);
            b.extend_from_slice(&fb);
        }
        section(&mut out, 10, b);
    }

    // Data section (11).
    if !m.data.is_empty() {
        let mut b = Vec::new();
        leb128::write_u32(&mut b, m.data.len() as u32);
        for d in &m.data {
            leb128::write_u32(&mut b, d.memory);
            write_const_expr(&mut b, &d.offset);
            leb128::write_u32(&mut b, d.bytes.len() as u32);
            b.extend_from_slice(&d.bytes);
        }
        section(&mut out, 11, b);
    }

    // Custom sections go last (a legal placement).
    for (name, payload) in &m.customs {
        let mut b = Vec::new();
        write_name(&mut b, name);
        b.extend_from_slice(payload);
        section(&mut out, 0, b);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_module;
    use crate::module::{DataSegment, Export, FuncBody, Global, Import};
    use crate::types::{FuncType, MemoryType, ValType};
    use bytelite::Bytes;

    #[test]
    fn empty_module() {
        let m = Module::default();
        let bytes = encode_module(&m);
        assert_eq!(&bytes[..4], b"\0asm");
        assert_eq!(decode_module(bytes).unwrap(), m);
    }

    #[test]
    fn full_roundtrip() {
        let mut m = Module::default();
        m.types.push(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]));
        m.types.push(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "wasi_snapshot_preview1".into(),
            name: "proc_exit".into(),
            desc: ImportDesc::Func(1),
        });
        m.funcs.push(0);
        m.memories.push(MemoryType { limits: Limits::new(1, Some(16)) });
        m.globals.push(Global {
            ty: GlobalType { value: ValType::I64, mutable: true },
            init: ConstExpr::I64(-5),
        });
        m.exports.push(Export { name: "add".into(), desc: ExportDesc::Func(1) });
        m.exports.push(Export { name: "memory".into(), desc: ExportDesc::Memory(0) });
        m.bodies.push(FuncBody {
            locals: vec![(1, ValType::I64)],
            code: Bytes::from_static(&[0x20, 0x00, 0x20, 0x01, 0x6a, 0x0b]),
        });
        m.data.push(DataSegment {
            memory: 0,
            offset: ConstExpr::I32(8),
            bytes: Bytes::from_static(b"hello"),
        });
        m.start = Some(1);
        m.customs.push(("producers".into(), Bytes::from_static(&[9, 9])));

        let bytes = encode_module(&m);
        let back = decode_module(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn globals_with_global_get_init() {
        let mut m = Module::default();
        m.imports.push(Import {
            module: "env".into(),
            name: "base".into(),
            desc: ImportDesc::Global(GlobalType { value: ValType::I32, mutable: false }),
        });
        m.globals.push(Global {
            ty: GlobalType { value: ValType::I32, mutable: false },
            init: ConstExpr::GlobalGet(0),
        });
        let back = decode_module(encode_module(&m)).unwrap();
        assert_eq!(back, m);
    }
}
