//! Decoding and validation errors.

use std::fmt;

/// Errors from the binary decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a structure.
    UnexpectedEof,
    /// Bad magic number (not `\0asm`).
    BadMagic,
    /// Unsupported version (must be 1).
    BadVersion(u32),
    /// LEB128 value exceeds its target width.
    IntegerTooLarge,
    /// LEB128 used more bytes than its width allows.
    IntegerTooLong,
    /// Unknown section id.
    UnknownSection(u8),
    /// Sections out of order or duplicated.
    SectionOrder(u8),
    /// Declared size doesn't match actual content.
    SectionSizeMismatch { declared: u32, actual: u32 },
    /// Unknown value type byte.
    BadValType(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown import/export kind byte.
    BadKind(u8),
    /// Malformed UTF-8 in a name.
    BadUtf8,
    /// Function and code section lengths disagree.
    FuncCodeMismatch { funcs: u32, bodies: u32 },
    /// Malformed mutability flag.
    BadMutability(u8),
    /// Limits flag invalid.
    BadLimitsFlag(u8),
    /// A structural constraint was violated (context in the string).
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadMagic => write!(f, "bad magic number"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::IntegerTooLarge => write!(f, "integer exceeds target width"),
            DecodeError::IntegerTooLong => write!(f, "integer encoding too long"),
            DecodeError::UnknownSection(id) => write!(f, "unknown section id {id}"),
            DecodeError::SectionOrder(id) => write!(f, "section {id} out of order"),
            DecodeError::SectionSizeMismatch { declared, actual } => {
                write!(f, "section size mismatch: declared {declared}, actual {actual}")
            }
            DecodeError::BadValType(b) => write!(f, "bad value type 0x{b:02x}"),
            DecodeError::BadOpcode(b) => write!(f, "bad opcode 0x{b:02x}"),
            DecodeError::BadKind(b) => write!(f, "bad import/export kind 0x{b:02x}"),
            DecodeError::BadUtf8 => write!(f, "malformed UTF-8 name"),
            DecodeError::FuncCodeMismatch { funcs, bodies } => {
                write!(f, "function section has {funcs} entries but code section has {bodies}")
            }
            DecodeError::BadMutability(b) => write!(f, "bad mutability flag 0x{b:02x}"),
            DecodeError::BadLimitsFlag(b) => write!(f, "bad limits flag 0x{b:02x}"),
            DecodeError::Malformed(s) => write!(f, "malformed module: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors from the validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A type index is out of range.
    UnknownType(u32),
    /// A function index is out of range.
    UnknownFunc(u32),
    /// A local index is out of range.
    UnknownLocal(u32),
    /// A global index is out of range.
    UnknownGlobal(u32),
    /// A label depth is out of range.
    UnknownLabel(u32),
    /// A table index is out of range.
    UnknownTable(u32),
    /// A memory index is out of range.
    UnknownMemory(u32),
    /// Operand stack type mismatch.
    TypeMismatch { context: String },
    /// Assignment to an immutable global.
    ImmutableGlobal(u32),
    /// Alignment exceeds natural alignment of the access.
    BadAlignment { align: u32, natural: u32 },
    /// Multiple memories/tables declared (MVP allows at most one).
    MultipleDeclared(&'static str),
    /// Limits minimum exceeds maximum.
    BadLimits,
    /// Start function has the wrong signature.
    BadStartSignature,
    /// Constant expression required (globals, element/data offsets).
    NotConstant,
    /// Duplicate export name.
    DuplicateExport(String),
    /// Values remain on the stack at the end of a function/block.
    UnbalancedStack { expected: usize, actual: usize },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownType(i) => write!(f, "unknown type index {i}"),
            ValidationError::UnknownFunc(i) => write!(f, "unknown function index {i}"),
            ValidationError::UnknownLocal(i) => write!(f, "unknown local index {i}"),
            ValidationError::UnknownGlobal(i) => write!(f, "unknown global index {i}"),
            ValidationError::UnknownLabel(i) => write!(f, "unknown label depth {i}"),
            ValidationError::UnknownTable(i) => write!(f, "unknown table index {i}"),
            ValidationError::UnknownMemory(i) => write!(f, "unknown memory index {i}"),
            ValidationError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            ValidationError::ImmutableGlobal(i) => write!(f, "global {i} is immutable"),
            ValidationError::BadAlignment { align, natural } => {
                write!(f, "alignment 2^{align} exceeds natural 2^{natural}")
            }
            ValidationError::MultipleDeclared(what) => {
                write!(f, "at most one {what} is allowed in the MVP")
            }
            ValidationError::BadLimits => write!(f, "limits minimum exceeds maximum"),
            ValidationError::BadStartSignature => {
                write!(f, "start function must have type [] -> []")
            }
            ValidationError::NotConstant => write!(f, "constant expression required"),
            ValidationError::DuplicateExport(n) => write!(f, "duplicate export name {n:?}"),
            ValidationError::UnbalancedStack { expected, actual } => {
                write!(f, "unbalanced stack: expected {expected} values, found {actual}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}
