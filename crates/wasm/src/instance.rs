//! Module instantiation and invocation.
//!
//! An [`Instance`] owns the runtime state (linear memory, globals, table,
//! host imports) and executes through one of two tiers:
//!
//! * [`ExecTier::InPlace`] — the WAMR-style classic interpreter
//!   ([`crate::interp`]): executes raw code bytes directly, building only a
//!   small per-function control side-table on first call;
//! * [`ExecTier::Lowered`] — the JIT/AOT-style tier ([`crate::lowered`]):
//!   every function is eagerly compiled at instantiation into a wide,
//!   jump-resolved internal representation that executes faster but costs
//!   compile time and memory.
//!
//! [`ExecStats`] exposes exactly the quantities the engine profiles charge
//! to the simulated kernel: side-table bytes, lowered-code bytes, and
//! retired instructions (the engines' execution-time model).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::interp;
use crate::lowered::{self, LoweredFunc};
use crate::memory::LinearMemory;
use crate::module::{ConstExpr, ImportDesc, Module};
use crate::types::ValType;
use crate::values::{Slot, Trap, Value};

/// Execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// Interpret raw bytecode in place (small, slower per instruction).
    InPlace,
    /// Eagerly lower all functions to internal code (large, faster).
    Lowered,
}

/// A shared epoch counter — the deterministic stand-in for the epoch-ticker
/// thread real engines (wasmtime-style epoch interruption) run beside the
/// guest. The executing instance advances it as instructions retire; any
/// holder of a clone can observe it or force it past every deadline with
/// [`EpochClock::interrupt`], which the guest notices at its next epoch
/// check — exactly the "signal lands at the next safepoint" semantics of
/// the real mechanism, with instruction counts standing in for time.
#[derive(Debug, Clone, Default)]
pub struct EpochClock {
    epoch: Arc<AtomicU64>,
}

impl EpochClock {
    pub fn new() -> EpochClock {
        EpochClock::default()
    }

    /// Current epoch.
    pub fn now(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Advance by `ticks` epochs and return the new value. Saturating, so
    /// an interrupted clock stays interrupted.
    pub fn advance(&self, ticks: u64) -> u64 {
        let now = self.epoch.load(Ordering::Relaxed).saturating_add(ticks);
        self.epoch.store(now, Ordering::Relaxed);
        now
    }

    /// Force the clock past every possible deadline: the guest traps with
    /// `Trap::Interrupted` at its next epoch check.
    pub fn interrupt(&self) {
        self.epoch.store(u64::MAX, Ordering::Relaxed);
    }
}

/// Epoch-interruption settings: a clock shared with the embedder, a
/// deadline, and how many retired instructions one epoch tick represents.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// The clock this instance advances and checks. Keep a clone to
    /// interrupt the guest from outside.
    pub clock: EpochClock,
    /// Trap with `Trap::Interrupted` once the clock reaches this epoch.
    pub deadline: u64,
    /// Instructions retired per epoch tick (the check granularity).
    pub tick_instrs: u64,
}

/// Instantiation/execution options.
#[derive(Debug, Clone)]
pub struct InstanceConfig {
    pub tier: ExecTier,
    /// Optional instruction budget; `Trap::OutOfFuel` when exhausted.
    pub fuel: Option<u64>,
    /// Maximum call depth before `Trap::StackOverflow`.
    pub max_call_depth: usize,
    /// Optional epoch watchdog; `Trap::Interrupted` past the deadline.
    pub epoch: Option<EpochConfig>,
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig { tier: ExecTier::InPlace, fuel: None, max_call_depth: 1024, epoch: None }
    }
}

/// Live epoch state: the countdown to the next tick of the shared clock.
#[derive(Debug, Clone)]
struct EpochState {
    clock: EpochClock,
    deadline: u64,
    tick_instrs: u64,
    until_tick: u64,
}

impl EpochState {
    fn new(cfg: EpochConfig) -> EpochState {
        let tick_instrs = cfg.tick_instrs.max(1);
        EpochState {
            clock: cfg.clock,
            deadline: cfg.deadline,
            tick_instrs,
            until_tick: tick_instrs,
        }
    }
}

/// A host (import) function: receives the instance memory and arguments.
pub type HostFunc = Box<dyn FnMut(&mut Option<LinearMemory>, &[Value]) -> Result<Vec<Value>, Trap>>;

/// Named host imports for instantiation.
#[derive(Default)]
pub struct Imports {
    funcs: BTreeMap<(String, String), HostFunc>,
}

impl Imports {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a host function as `module.name`.
    pub fn func(
        mut self,
        module: &str,
        name: &str,
        f: impl FnMut(&mut Option<LinearMemory>, &[Value]) -> Result<Vec<Value>, Trap> + 'static,
    ) -> Self {
        self.funcs.insert((module.to_string(), name.to_string()), Box::new(f));
        self
    }

    pub fn register(&mut self, module: &str, name: &str, f: HostFunc) {
        self.funcs.insert((module.to_string(), name.to_string()), f);
    }
}

/// Execution statistics — the engines' memory/time accounting interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Work units retired across all invocations. Deliberately
    /// tier-dependent: the in-place interpreter counts every dispatched
    /// bytecode (including `block`/`end` bookkeeping it must execute), the
    /// lowered tier counts its compiled instructions — mirroring how real
    /// interpreters do more dispatch work than compiled code for the same
    /// program. The engine time models multiply this by per-tier costs.
    pub instrs_retired: u64,
    /// Calls into host (WASI) functions.
    pub host_calls: u64,
    /// Bytes of control side-tables built by the in-place tier.
    pub side_table_bytes: u64,
    /// Bytes of lowered internal code built by the lowered tier.
    pub lowered_bytes: u64,
    /// High-water mark of the operand stack, in slots.
    pub peak_stack_slots: u64,
    /// Superinstruction-fusion events in the code compiled for this
    /// instance (lowered tier only; 0 on the in-place tier).
    pub fused_ops: u64,
}

/// Errors during instantiation (before any code runs).
#[derive(Debug)]
pub enum InstantiateError {
    /// No import provided for `module.name`.
    MissingImport(String, String),
    /// Imported memories/tables/globals are not supported by this embedder.
    UnsupportedImport(String),
    /// An active segment falls outside its target.
    SegmentOutOfBounds(&'static str),
    /// The module failed validation.
    Invalid(crate::error::ValidationError),
    /// Start function trapped.
    StartTrapped(Trap),
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::MissingImport(m, n) => write!(f, "missing import {m}.{n}"),
            InstantiateError::UnsupportedImport(s) => write!(f, "unsupported import: {s}"),
            InstantiateError::SegmentOutOfBounds(what) => {
                write!(f, "active {what} segment out of bounds")
            }
            InstantiateError::Invalid(e) => write!(f, "validation failed: {e}"),
            InstantiateError::StartTrapped(t) => write!(f, "start function trapped: {t}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

/// A live module instance.
pub struct Instance {
    pub(crate) module: Arc<Module>,
    pub(crate) config: InstanceConfig,
    pub(crate) memory: Option<LinearMemory>,
    pub(crate) globals: Vec<Slot>,
    pub(crate) global_types: Vec<ValType>,
    pub(crate) table: Vec<Option<u32>>,
    pub(crate) host_funcs: Vec<Option<HostFunc>>,
    /// Lazily built control side-tables (in-place tier), per local function.
    pub(crate) side_tables: Vec<Option<Arc<interp::SideTable>>>,
    /// Eagerly compiled functions (lowered tier), per local function.
    pub(crate) lowered: Vec<Option<Arc<LoweredFunc>>>,
    pub(crate) stats: ExecStats,
    pub(crate) fuel: Option<u64>,
    epoch: Option<EpochState>,
    /// Reusable operand stack: cleared and handed to the interpreter on
    /// each invocation so repeated invokes don't reallocate.
    pub(crate) value_stack: Vec<Slot>,
    /// Recycled `locals` buffers from popped interpreter frames.
    pub(crate) locals_pool: Vec<Vec<Slot>>,
    /// Recycled label stacks from popped interpreter frames.
    pub(crate) labels_pool: Vec<Vec<interp::Label>>,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("funcs", &self.module.num_funcs())
            .field("tier", &self.config.tier)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Instance {
    /// Validate and instantiate a module with the given imports.
    pub fn instantiate(
        module: Arc<Module>,
        imports: Imports,
        config: InstanceConfig,
    ) -> Result<Instance, InstantiateError> {
        crate::validate::validate_module(&module).map_err(InstantiateError::Invalid)?;
        Instance::instantiate_prevalidated(module, imports, config)
    }

    /// Instantiate a module that is already known to be valid — e.g. one
    /// obtained from [`crate::ArtifactCache::get_or_decode`], which
    /// validates on insertion. Skips the per-instance validation pass; the
    /// caller vouches for validity (an invalid module may panic mid-run).
    pub fn instantiate_prevalidated(
        module: Arc<Module>,
        mut imports: Imports,
        config: InstanceConfig,
    ) -> Result<Instance, InstantiateError> {
        // Resolve imports. Only function imports are supported by this
        // embedder (all WASI modules import functions only).
        let mut host_funcs = Vec::new();
        for imp in &module.imports {
            match &imp.desc {
                ImportDesc::Func(_) => {
                    let key = (imp.module.clone(), imp.name.clone());
                    let f = imports.funcs.remove(&key).ok_or_else(|| {
                        InstantiateError::MissingImport(imp.module.clone(), imp.name.clone())
                    })?;
                    host_funcs.push(Some(f));
                }
                other => return Err(InstantiateError::UnsupportedImport(format!("{other:?}"))),
            }
        }

        // Memory.
        let memory = module.memories.first().map(|mt| LinearMemory::new(mt.limits));

        // Globals.
        let mut globals = Vec::with_capacity(module.globals.len());
        let mut global_types = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let slot = match g.init {
                ConstExpr::I32(v) => Slot::from_i32(v),
                ConstExpr::I64(v) => Slot::from_i64(v),
                ConstExpr::F32(v) => Slot::from_f32(v),
                ConstExpr::F64(v) => Slot::from_f64(v),
                // Validation restricts global.get initializers to imported
                // globals, which this embedder does not support.
                ConstExpr::GlobalGet(_) => {
                    return Err(InstantiateError::UnsupportedImport("global.get init".into()))
                }
            };
            globals.push(slot);
            global_types.push(g.ty.value);
        }

        // Table + element segments.
        let mut table: Vec<Option<u32>> =
            module.tables.first().map(|t| vec![None; t.limits.min as usize]).unwrap_or_default();
        for seg in &module.elements {
            let offset = match seg.offset {
                ConstExpr::I32(v) => v as u32 as usize,
                _ => return Err(InstantiateError::SegmentOutOfBounds("element")),
            };
            let end = offset + seg.funcs.len();
            if end > table.len() {
                return Err(InstantiateError::SegmentOutOfBounds("element"));
            }
            for (i, f) in seg.funcs.iter().enumerate() {
                table[offset + i] = Some(*f);
            }
        }

        let n_local_funcs = module.funcs.len();
        let mut inst = Instance {
            fuel: config.fuel,
            epoch: config.epoch.clone().map(EpochState::new),
            config,
            memory,
            globals,
            global_types,
            table,
            host_funcs,
            side_tables: vec![None; n_local_funcs],
            lowered: vec![None; n_local_funcs],
            stats: ExecStats::default(),
            module,
            value_stack: Vec::new(),
            locals_pool: Vec::new(),
            labels_pool: Vec::new(),
        };

        // Data segments.
        for seg in &inst.module.data.clone() {
            let offset = match seg.offset {
                ConstExpr::I32(v) => v as u32,
                _ => return Err(InstantiateError::SegmentOutOfBounds("data")),
            };
            let mem = inst.memory.as_mut().ok_or(InstantiateError::SegmentOutOfBounds("data"))?;
            mem.write_bytes(offset, &seg.bytes)
                .map_err(|_| InstantiateError::SegmentOutOfBounds("data"))?;
        }

        // Lowered tier compiles everything up front — that is the point.
        if inst.config.tier == ExecTier::Lowered {
            inst.compile_all();
        }

        // Run the start function if present.
        if let Some(start) = inst.module.start {
            inst.invoke_index(start, &[]).map_err(InstantiateError::StartTrapped)?;
        }

        Ok(inst)
    }

    /// Eagerly lower every local function (the compile phase of the
    /// JIT/AOT-profile engines). Idempotent.
    pub fn compile_all(&mut self) {
        let module = Arc::clone(&self.module);
        for i in 0..module.funcs.len() {
            if self.lowered[i].is_none() {
                let func_idx = module.num_imported_funcs() + i as u32;
                let lf =
                    lowered::shared_lowered(&module, func_idx).expect("validated function lowers");
                self.stats.lowered_bytes += lf.memory_bytes();
                self.stats.fused_ops += lf.fused as u64;
                self.lowered[i] = Some(lf);
            }
        }
    }

    /// The module this instance runs.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Remaining fuel, if a budget was configured.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.fuel
    }

    /// Top up or set the instruction budget.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// A handle to the epoch clock, if an epoch watchdog is configured.
    /// Cloneable; `interrupt()` on any clone stops the guest at its next
    /// epoch check.
    pub fn epoch_clock(&self) -> Option<EpochClock> {
        self.epoch.as_ref().map(|e| e.clock.clone())
    }

    /// Access the linear memory (e.g. for test assertions).
    pub fn memory(&self) -> Option<&LinearMemory> {
        self.memory.as_ref()
    }

    /// Read a global by index (combined space; this embedder has no
    /// imported globals, so indices match the module's own).
    pub fn global(&self, idx: u32) -> Option<Value> {
        let slot = *self.globals.get(idx as usize)?;
        let ty = *self.global_types.get(idx as usize)?;
        Some(Value::from_slot(slot, ty))
    }

    /// Invoke an exported function by name.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let idx = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::HostError(format!("no exported function {name:?}")))?;
        self.invoke_index(idx, args)
    }

    /// Invoke a function by index in the combined function space.
    pub fn invoke_index(&mut self, func_idx: u32, args: &[Value]) -> Result<Vec<Value>, Trap> {
        // Check the signature eagerly so both tiers agree on errors.
        let ft = self
            .module
            .func_type(func_idx)
            .ok_or_else(|| Trap::HostError(format!("no function {func_idx}")))?;
        if ft.params.len() != args.len() || ft.params.iter().zip(args).any(|(p, a)| *p != a.ty()) {
            return Err(Trap::HostError(format!(
                "argument mismatch: expected {}, got {} args",
                ft,
                args.len()
            )));
        }
        match self.config.tier {
            ExecTier::InPlace => interp::invoke(self, func_idx, args),
            ExecTier::Lowered => lowered::invoke(self, func_idx, args),
        }
    }

    /// Call `_start` (the WASI entry point). `Trap::Exit(0)` is success.
    pub fn run_start(&mut self) -> Result<(), Trap> {
        match self.invoke("_start", &[]) {
            Ok(_) => Ok(()),
            Err(Trap::Exit(0)) => Ok(()),
            Err(t) => Err(t),
        }
    }

    /// Call a host (imported) function by its function index. Used by both
    /// executors; takes the closure out to avoid aliasing the instance.
    pub(crate) fn call_host(&mut self, func_idx: u32, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let slot = func_idx as usize;
        let mut f = self.host_funcs[slot]
            .take()
            .ok_or_else(|| Trap::HostError(format!("host function {func_idx} re-entered")))?;
        let result = f(&mut self.memory, args);
        self.host_funcs[slot] = Some(f);
        self.stats.host_calls += 1;
        result
    }

    /// Burn fuel for `n` instructions and service the epoch watchdog.
    #[inline]
    pub(crate) fn burn(&mut self, n: u64) -> Result<(), Trap> {
        self.stats.instrs_retired += n;
        if let Some(fuel) = &mut self.fuel {
            if *fuel < n {
                *fuel = 0;
                return Err(Trap::OutOfFuel);
            }
            *fuel -= n;
        }
        if let Some(ep) = &mut self.epoch {
            if n >= ep.until_tick {
                // Crossed one or more tick boundaries: advance the shared
                // clock and check the deadline (the epoch "safepoint").
                let past = n - ep.until_tick;
                let ticks = 1 + past / ep.tick_instrs;
                ep.until_tick = ep.tick_instrs - past % ep.tick_instrs;
                if ep.clock.advance(ticks) >= ep.deadline {
                    return Err(Trap::Interrupted);
                }
            } else {
                ep.until_tick -= n;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::FuncType;

    fn add_module() -> Arc<Module> {
        let mut b = ModuleBuilder::new();
        let add =
            b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
                f.local_get(0).local_get(1).op(crate::instr::Instruction::I32Add);
            });
        b.export_func("add", add);
        Arc::new(b.build())
    }

    #[test]
    fn instantiate_and_invoke_both_tiers() {
        for tier in [ExecTier::InPlace, ExecTier::Lowered] {
            let cfg = InstanceConfig { tier, ..Default::default() };
            let mut inst = Instance::instantiate(add_module(), Imports::new(), cfg).unwrap();
            let out = inst.invoke("add", &[Value::I32(2), Value::I32(40)]).unwrap();
            assert_eq!(out, vec![Value::I32(42)]);
        }
    }

    #[test]
    fn missing_import_reported() {
        let mut b = ModuleBuilder::new();
        b.import_func("env", "f", FuncType::new(vec![], vec![]));
        let err =
            Instance::instantiate(Arc::new(b.build()), Imports::new(), InstanceConfig::default())
                .unwrap_err();
        assert!(matches!(err, InstantiateError::MissingImport(_, _)));
    }

    #[test]
    fn host_function_called() {
        let mut b = ModuleBuilder::new();
        let log = b.import_func("env", "log", FuncType::new(vec![ValType::I32], vec![]));
        let f = b.func(FuncType::new(vec![], vec![]), |fb| {
            fb.i32_const(7).call(log);
        });
        b.export_func("go", f);
        let calls = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let calls2 = calls.clone();
        let imports = Imports::new().func("env", "log", move |_, args| {
            calls2.borrow_mut().push(args[0]);
            Ok(vec![])
        });
        let mut inst =
            Instance::instantiate(Arc::new(b.build()), imports, InstanceConfig::default()).unwrap();
        inst.invoke("go", &[]).unwrap();
        assert_eq!(&*calls.borrow(), &[Value::I32(7)]);
        assert_eq!(inst.stats().host_calls, 1);
    }

    #[test]
    fn data_segments_applied() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.data(32, &b"xyz"[..]);
        let inst =
            Instance::instantiate(Arc::new(b.build()), Imports::new(), InstanceConfig::default())
                .unwrap();
        assert_eq!(inst.memory().unwrap().read_bytes(32, 3).unwrap(), b"xyz");
    }

    #[test]
    fn data_segment_oob_rejected() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.data(65534, &b"xyz"[..]);
        let err =
            Instance::instantiate(Arc::new(b.build()), Imports::new(), InstanceConfig::default())
                .unwrap_err();
        assert!(matches!(err, InstantiateError::SegmentOutOfBounds("data")));
    }

    #[test]
    fn argument_mismatch_rejected() {
        let mut inst =
            Instance::instantiate(add_module(), Imports::new(), InstanceConfig::default()).unwrap();
        assert!(inst.invoke("add", &[Value::I32(1)]).is_err());
        assert!(inst.invoke("add", &[Value::I64(1), Value::I64(2)]).is_err());
        assert!(inst.invoke("nope", &[]).is_err());
    }

    #[test]
    fn lowered_tier_reports_compiled_bytes() {
        let cfg = InstanceConfig { tier: ExecTier::Lowered, ..Default::default() };
        let inst = Instance::instantiate(add_module(), Imports::new(), cfg).unwrap();
        assert!(inst.stats().lowered_bytes > 0);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |fb| {
            fb.loop_(crate::types::BlockType::Empty, |fb| {
                fb.br(0);
            });
        });
        b.export_func("spin", f);
        let module = Arc::new(b.build());
        for tier in [ExecTier::InPlace, ExecTier::Lowered] {
            let cfg = InstanceConfig { tier, fuel: Some(10_000), ..Default::default() };
            let mut inst = Instance::instantiate(Arc::clone(&module), Imports::new(), cfg).unwrap();
            assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel));
            assert_eq!(inst.fuel_remaining(), Some(0));
        }
    }

    fn spin_module() -> Arc<Module> {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |fb| {
            fb.loop_(crate::types::BlockType::Empty, |fb| {
                fb.br(0);
            });
        });
        b.export_func("spin", f);
        Arc::new(b.build())
    }

    #[test]
    fn epoch_deadline_interrupts_deterministically_on_both_tiers() {
        let module = spin_module();
        for tier in [ExecTier::InPlace, ExecTier::Lowered] {
            let run = |deadline: u64| {
                let cfg = InstanceConfig {
                    tier,
                    epoch: Some(EpochConfig {
                        clock: EpochClock::new(),
                        deadline,
                        tick_instrs: 100,
                    }),
                    ..Default::default()
                };
                let mut inst =
                    Instance::instantiate(Arc::clone(&module), Imports::new(), cfg).unwrap();
                let res = inst.invoke("spin", &[]);
                (res, inst.stats().instrs_retired, inst.epoch_clock().unwrap().now())
            };
            let (res, retired, epoch) = run(5);
            assert_eq!(res, Err(Trap::Interrupted));
            assert_eq!(epoch, 5, "trap lands exactly at the deadline tick");
            let (res2, retired2, _) = run(5);
            assert_eq!(res2, Err(Trap::Interrupted));
            assert_eq!(retired, retired2, "same budget, same trap point");
            // A later deadline retires strictly more instructions.
            let (_, retired_more, _) = run(10);
            assert!(retired_more > retired);
        }
    }

    #[test]
    fn external_interrupt_lands_at_the_next_epoch_check() {
        let clock = EpochClock::new();
        let cfg = InstanceConfig {
            epoch: Some(EpochConfig { clock: clock.clone(), deadline: u64::MAX, tick_instrs: 10 }),
            ..Default::default()
        };
        let mut inst = Instance::instantiate(spin_module(), Imports::new(), cfg).unwrap();
        // Interrupt before the guest even starts: the first epoch check
        // (after `tick_instrs` retired instructions) observes it.
        clock.interrupt();
        assert_eq!(inst.invoke("spin", &[]), Err(Trap::Interrupted));
        assert!(inst.stats().instrs_retired <= 20, "stopped at the first safepoint");
        assert_eq!(clock.now(), u64::MAX, "interrupted clock stays interrupted");
    }

    #[test]
    fn epoch_clock_is_shared_across_clones() {
        let clock = EpochClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(3), 3);
        let other = clock.clone();
        assert_eq!(other.now(), 3);
        other.interrupt();
        assert_eq!(clock.advance(1), u64::MAX, "saturates once interrupted");
    }
}
