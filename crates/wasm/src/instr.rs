//! Instructions: the MVP opcode space, a streaming reader, and a writer.
//!
//! The same [`read_instr`] routine is used by the module decoder, the
//! validator, the control side-table builder, the in-place interpreter and
//! the lowering pass, so there is exactly one definition of the binary
//! instruction grammar in the workspace.

use crate::error::DecodeError;
use crate::leb128;
use crate::types::{BlockType, ValType};

/// Memory-access immediate: alignment exponent and byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    pub align: u32,
    pub offset: u32,
}

/// Payload of `br_table`, boxed to keep [`Instruction`] small.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BrTableData {
    pub targets: Vec<u32>,
    pub default: u32,
}

/// A single WebAssembly MVP instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    // Control.
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    BrTable(Box<BrTableData>),
    Return,
    Call(u32),
    CallIndirect { type_idx: u32, table_idx: u32 },

    // Parametric.
    Drop,
    Select,

    // Variables.
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory.
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),
    MemorySize,
    MemoryGrow,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    // i32 comparisons.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    // i64 comparisons.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    // f32 comparisons.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    // f64 comparisons.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // i32 arithmetic.
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    // i64 arithmetic.
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    // f32 arithmetic.
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    // f64 arithmetic.
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

/// Opcode byte constants (spec §5.4).
pub mod op {
    pub const UNREACHABLE: u8 = 0x00;
    pub const NOP: u8 = 0x01;
    pub const BLOCK: u8 = 0x02;
    pub const LOOP: u8 = 0x03;
    pub const IF: u8 = 0x04;
    pub const ELSE: u8 = 0x05;
    pub const END: u8 = 0x0b;
    pub const BR: u8 = 0x0c;
    pub const BR_IF: u8 = 0x0d;
    pub const BR_TABLE: u8 = 0x0e;
    pub const RETURN: u8 = 0x0f;
    pub const CALL: u8 = 0x10;
    pub const CALL_INDIRECT: u8 = 0x11;
    pub const DROP: u8 = 0x1a;
    pub const SELECT: u8 = 0x1b;
    pub const LOCAL_GET: u8 = 0x20;
    pub const LOCAL_SET: u8 = 0x21;
    pub const LOCAL_TEE: u8 = 0x22;
    pub const GLOBAL_GET: u8 = 0x23;
    pub const GLOBAL_SET: u8 = 0x24;
    pub const I32_LOAD: u8 = 0x28;
    pub const I64_LOAD: u8 = 0x29;
    pub const F32_LOAD: u8 = 0x2a;
    pub const F64_LOAD: u8 = 0x2b;
    pub const I32_LOAD8_S: u8 = 0x2c;
    pub const I32_LOAD8_U: u8 = 0x2d;
    pub const I32_LOAD16_S: u8 = 0x2e;
    pub const I32_LOAD16_U: u8 = 0x2f;
    pub const I64_LOAD8_S: u8 = 0x30;
    pub const I64_LOAD8_U: u8 = 0x31;
    pub const I64_LOAD16_S: u8 = 0x32;
    pub const I64_LOAD16_U: u8 = 0x33;
    pub const I64_LOAD32_S: u8 = 0x34;
    pub const I64_LOAD32_U: u8 = 0x35;
    pub const I32_STORE: u8 = 0x36;
    pub const I64_STORE: u8 = 0x37;
    pub const F32_STORE: u8 = 0x38;
    pub const F64_STORE: u8 = 0x39;
    pub const I32_STORE8: u8 = 0x3a;
    pub const I32_STORE16: u8 = 0x3b;
    pub const I64_STORE8: u8 = 0x3c;
    pub const I64_STORE16: u8 = 0x3d;
    pub const I64_STORE32: u8 = 0x3e;
    pub const MEMORY_SIZE: u8 = 0x3f;
    pub const MEMORY_GROW: u8 = 0x40;
    pub const I32_CONST: u8 = 0x41;
    pub const I64_CONST: u8 = 0x42;
    pub const F32_CONST: u8 = 0x43;
    pub const F64_CONST: u8 = 0x44;
    pub const I32_EQZ: u8 = 0x45;
    pub const I32_EQ: u8 = 0x46;
    pub const I32_NE: u8 = 0x47;
    pub const I32_LT_S: u8 = 0x48;
    pub const I32_LT_U: u8 = 0x49;
    pub const I32_GT_S: u8 = 0x4a;
    pub const I32_GT_U: u8 = 0x4b;
    pub const I32_LE_S: u8 = 0x4c;
    pub const I32_LE_U: u8 = 0x4d;
    pub const I32_GE_S: u8 = 0x4e;
    pub const I32_GE_U: u8 = 0x4f;
    pub const I64_EQZ: u8 = 0x50;
    pub const I64_EQ: u8 = 0x51;
    pub const I64_NE: u8 = 0x52;
    pub const I64_LT_S: u8 = 0x53;
    pub const I64_LT_U: u8 = 0x54;
    pub const I64_GT_S: u8 = 0x55;
    pub const I64_GT_U: u8 = 0x56;
    pub const I64_LE_S: u8 = 0x57;
    pub const I64_LE_U: u8 = 0x58;
    pub const I64_GE_S: u8 = 0x59;
    pub const I64_GE_U: u8 = 0x5a;
    pub const F32_EQ: u8 = 0x5b;
    pub const F32_NE: u8 = 0x5c;
    pub const F32_LT: u8 = 0x5d;
    pub const F32_GT: u8 = 0x5e;
    pub const F32_LE: u8 = 0x5f;
    pub const F32_GE: u8 = 0x60;
    pub const F64_EQ: u8 = 0x61;
    pub const F64_NE: u8 = 0x62;
    pub const F64_LT: u8 = 0x63;
    pub const F64_GT: u8 = 0x64;
    pub const F64_LE: u8 = 0x65;
    pub const F64_GE: u8 = 0x66;
    pub const I32_CLZ: u8 = 0x67;
    pub const I32_CTZ: u8 = 0x68;
    pub const I32_POPCNT: u8 = 0x69;
    pub const I32_ADD: u8 = 0x6a;
    pub const I32_SUB: u8 = 0x6b;
    pub const I32_MUL: u8 = 0x6c;
    pub const I32_DIV_S: u8 = 0x6d;
    pub const I32_DIV_U: u8 = 0x6e;
    pub const I32_REM_S: u8 = 0x6f;
    pub const I32_REM_U: u8 = 0x70;
    pub const I32_AND: u8 = 0x71;
    pub const I32_OR: u8 = 0x72;
    pub const I32_XOR: u8 = 0x73;
    pub const I32_SHL: u8 = 0x74;
    pub const I32_SHR_S: u8 = 0x75;
    pub const I32_SHR_U: u8 = 0x76;
    pub const I32_ROTL: u8 = 0x77;
    pub const I32_ROTR: u8 = 0x78;
    pub const I64_CLZ: u8 = 0x79;
    pub const I64_CTZ: u8 = 0x7a;
    pub const I64_POPCNT: u8 = 0x7b;
    pub const I64_ADD: u8 = 0x7c;
    pub const I64_SUB: u8 = 0x7d;
    pub const I64_MUL: u8 = 0x7e;
    pub const I64_DIV_S: u8 = 0x7f;
    pub const I64_DIV_U: u8 = 0x80;
    pub const I64_REM_S: u8 = 0x81;
    pub const I64_REM_U: u8 = 0x82;
    pub const I64_AND: u8 = 0x83;
    pub const I64_OR: u8 = 0x84;
    pub const I64_XOR: u8 = 0x85;
    pub const I64_SHL: u8 = 0x86;
    pub const I64_SHR_S: u8 = 0x87;
    pub const I64_SHR_U: u8 = 0x88;
    pub const I64_ROTL: u8 = 0x89;
    pub const I64_ROTR: u8 = 0x8a;
    pub const F32_ABS: u8 = 0x8b;
    pub const F32_NEG: u8 = 0x8c;
    pub const F32_CEIL: u8 = 0x8d;
    pub const F32_FLOOR: u8 = 0x8e;
    pub const F32_TRUNC: u8 = 0x8f;
    pub const F32_NEAREST: u8 = 0x90;
    pub const F32_SQRT: u8 = 0x91;
    pub const F32_ADD: u8 = 0x92;
    pub const F32_SUB: u8 = 0x93;
    pub const F32_MUL: u8 = 0x94;
    pub const F32_DIV: u8 = 0x95;
    pub const F32_MIN: u8 = 0x96;
    pub const F32_MAX: u8 = 0x97;
    pub const F32_COPYSIGN: u8 = 0x98;
    pub const F64_ABS: u8 = 0x99;
    pub const F64_NEG: u8 = 0x9a;
    pub const F64_CEIL: u8 = 0x9b;
    pub const F64_FLOOR: u8 = 0x9c;
    pub const F64_TRUNC: u8 = 0x9d;
    pub const F64_NEAREST: u8 = 0x9e;
    pub const F64_SQRT: u8 = 0x9f;
    pub const F64_ADD: u8 = 0xa0;
    pub const F64_SUB: u8 = 0xa1;
    pub const F64_MUL: u8 = 0xa2;
    pub const F64_DIV: u8 = 0xa3;
    pub const F64_MIN: u8 = 0xa4;
    pub const F64_MAX: u8 = 0xa5;
    pub const F64_COPYSIGN: u8 = 0xa6;
    pub const I32_WRAP_I64: u8 = 0xa7;
    pub const I32_TRUNC_F32_S: u8 = 0xa8;
    pub const I32_TRUNC_F32_U: u8 = 0xa9;
    pub const I32_TRUNC_F64_S: u8 = 0xaa;
    pub const I32_TRUNC_F64_U: u8 = 0xab;
    pub const I64_EXTEND_I32_S: u8 = 0xac;
    pub const I64_EXTEND_I32_U: u8 = 0xad;
    pub const I64_TRUNC_F32_S: u8 = 0xae;
    pub const I64_TRUNC_F32_U: u8 = 0xaf;
    pub const I64_TRUNC_F64_S: u8 = 0xb0;
    pub const I64_TRUNC_F64_U: u8 = 0xb1;
    pub const F32_CONVERT_I32_S: u8 = 0xb2;
    pub const F32_CONVERT_I32_U: u8 = 0xb3;
    pub const F32_CONVERT_I64_S: u8 = 0xb4;
    pub const F32_CONVERT_I64_U: u8 = 0xb5;
    pub const F32_DEMOTE_F64: u8 = 0xb6;
    pub const F64_CONVERT_I32_S: u8 = 0xb7;
    pub const F64_CONVERT_I32_U: u8 = 0xb8;
    pub const F64_CONVERT_I64_S: u8 = 0xb9;
    pub const F64_CONVERT_I64_U: u8 = 0xba;
    pub const F64_PROMOTE_F32: u8 = 0xbb;
    pub const I32_REINTERPRET_F32: u8 = 0xbc;
    pub const I64_REINTERPRET_F64: u8 = 0xbd;
    pub const F32_REINTERPRET_I32: u8 = 0xbe;
    pub const F64_REINTERPRET_I64: u8 = 0xbf;
}

fn read_block_type(buf: &[u8]) -> Result<(BlockType, usize), DecodeError> {
    let b = *buf.first().ok_or(DecodeError::UnexpectedEof)?;
    match b {
        0x40 => Ok((BlockType::Empty, 1)),
        0x7c..=0x7f => Ok((BlockType::Value(ValType::from_byte(b)?), 1)),
        _ => {
            // Extended form: a signed LEB type index (must be non-negative).
            let (v, n) = leb128::read_i64(buf)?;
            if v < 0 || v > u32::MAX as i64 {
                return Err(DecodeError::BadValType(b));
            }
            Ok((BlockType::Func(v as u32), n))
        }
    }
}

fn write_block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.byte()),
        BlockType::Func(idx) => leb128::write_i64(out, idx as i64),
    }
}

fn read_memarg(buf: &[u8]) -> Result<(MemArg, usize), DecodeError> {
    let (align, n1) = leb128::read_u32(buf)?;
    let (offset, n2) = leb128::read_u32(&buf[n1..])?;
    Ok((MemArg { align, offset }, n1 + n2))
}

fn write_memarg(out: &mut Vec<u8>, m: MemArg) {
    leb128::write_u32(out, m.align);
    leb128::write_u32(out, m.offset);
}

/// Decode one instruction at the start of `buf`.
/// Returns the instruction and the number of bytes consumed.
pub fn read_instr(buf: &[u8]) -> Result<(Instruction, usize), DecodeError> {
    use Instruction as I;
    let opcode = *buf.first().ok_or(DecodeError::UnexpectedEof)?;
    let rest = &buf[1..];
    macro_rules! simple {
        ($v:expr) => {
            Ok(($v, 1))
        };
    }
    macro_rules! u32_imm {
        ($ctor:expr) => {{
            let (v, n) = leb128::read_u32(rest)?;
            Ok(($ctor(v), 1 + n))
        }};
    }
    macro_rules! memarg {
        ($ctor:expr) => {{
            let (m, n) = read_memarg(rest)?;
            Ok(($ctor(m), 1 + n))
        }};
    }
    match opcode {
        op::UNREACHABLE => simple!(I::Unreachable),
        op::NOP => simple!(I::Nop),
        op::BLOCK => {
            let (bt, n) = read_block_type(rest)?;
            Ok((I::Block(bt), 1 + n))
        }
        op::LOOP => {
            let (bt, n) = read_block_type(rest)?;
            Ok((I::Loop(bt), 1 + n))
        }
        op::IF => {
            let (bt, n) = read_block_type(rest)?;
            Ok((I::If(bt), 1 + n))
        }
        op::ELSE => simple!(I::Else),
        op::END => simple!(I::End),
        op::BR => u32_imm!(I::Br),
        op::BR_IF => u32_imm!(I::BrIf),
        op::BR_TABLE => {
            let (count, mut used) = leb128::read_u32(rest)?;
            // Cap the pre-allocation by the bytes actually available: an
            // adversarial count must hit UnexpectedEof, not abort on a
            // multi-gigabyte reservation.
            let mut targets = Vec::with_capacity((count as usize).min(rest.len()));
            for _ in 0..count {
                let (t, n) = leb128::read_u32(&rest[used..])?;
                targets.push(t);
                used += n;
            }
            let (default, n) = leb128::read_u32(&rest[used..])?;
            used += n;
            Ok((I::BrTable(Box::new(BrTableData { targets, default })), 1 + used))
        }
        op::RETURN => simple!(I::Return),
        op::CALL => u32_imm!(I::Call),
        op::CALL_INDIRECT => {
            let (type_idx, n1) = leb128::read_u32(rest)?;
            let (table_idx, n2) = leb128::read_u32(&rest[n1..])?;
            Ok((I::CallIndirect { type_idx, table_idx }, 1 + n1 + n2))
        }
        op::DROP => simple!(I::Drop),
        op::SELECT => simple!(I::Select),
        op::LOCAL_GET => u32_imm!(I::LocalGet),
        op::LOCAL_SET => u32_imm!(I::LocalSet),
        op::LOCAL_TEE => u32_imm!(I::LocalTee),
        op::GLOBAL_GET => u32_imm!(I::GlobalGet),
        op::GLOBAL_SET => u32_imm!(I::GlobalSet),
        op::I32_LOAD => memarg!(I::I32Load),
        op::I64_LOAD => memarg!(I::I64Load),
        op::F32_LOAD => memarg!(I::F32Load),
        op::F64_LOAD => memarg!(I::F64Load),
        op::I32_LOAD8_S => memarg!(I::I32Load8S),
        op::I32_LOAD8_U => memarg!(I::I32Load8U),
        op::I32_LOAD16_S => memarg!(I::I32Load16S),
        op::I32_LOAD16_U => memarg!(I::I32Load16U),
        op::I64_LOAD8_S => memarg!(I::I64Load8S),
        op::I64_LOAD8_U => memarg!(I::I64Load8U),
        op::I64_LOAD16_S => memarg!(I::I64Load16S),
        op::I64_LOAD16_U => memarg!(I::I64Load16U),
        op::I64_LOAD32_S => memarg!(I::I64Load32S),
        op::I64_LOAD32_U => memarg!(I::I64Load32U),
        op::I32_STORE => memarg!(I::I32Store),
        op::I64_STORE => memarg!(I::I64Store),
        op::F32_STORE => memarg!(I::F32Store),
        op::F64_STORE => memarg!(I::F64Store),
        op::I32_STORE8 => memarg!(I::I32Store8),
        op::I32_STORE16 => memarg!(I::I32Store16),
        op::I64_STORE8 => memarg!(I::I64Store8),
        op::I64_STORE16 => memarg!(I::I64Store16),
        op::I64_STORE32 => memarg!(I::I64Store32),
        op::MEMORY_SIZE => {
            let (idx, n) = leb128::read_u32(rest)?;
            if idx != 0 {
                return Err(DecodeError::Malformed("memory.size reserved byte".into()));
            }
            Ok((I::MemorySize, 1 + n))
        }
        op::MEMORY_GROW => {
            let (idx, n) = leb128::read_u32(rest)?;
            if idx != 0 {
                return Err(DecodeError::Malformed("memory.grow reserved byte".into()));
            }
            Ok((I::MemoryGrow, 1 + n))
        }
        op::I32_CONST => {
            let (v, n) = leb128::read_i32(rest)?;
            Ok((I::I32Const(v), 1 + n))
        }
        op::I64_CONST => {
            let (v, n) = leb128::read_i64(rest)?;
            Ok((I::I64Const(v), 1 + n))
        }
        op::F32_CONST => {
            if rest.len() < 4 {
                return Err(DecodeError::UnexpectedEof);
            }
            let v = f32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
            Ok((I::F32Const(v), 5))
        }
        op::F64_CONST => {
            if rest.len() < 8 {
                return Err(DecodeError::UnexpectedEof);
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&rest[..8]);
            Ok((I::F64Const(f64::from_le_bytes(b)), 9))
        }
        op::I32_EQZ => simple!(I::I32Eqz),
        op::I32_EQ => simple!(I::I32Eq),
        op::I32_NE => simple!(I::I32Ne),
        op::I32_LT_S => simple!(I::I32LtS),
        op::I32_LT_U => simple!(I::I32LtU),
        op::I32_GT_S => simple!(I::I32GtS),
        op::I32_GT_U => simple!(I::I32GtU),
        op::I32_LE_S => simple!(I::I32LeS),
        op::I32_LE_U => simple!(I::I32LeU),
        op::I32_GE_S => simple!(I::I32GeS),
        op::I32_GE_U => simple!(I::I32GeU),
        op::I64_EQZ => simple!(I::I64Eqz),
        op::I64_EQ => simple!(I::I64Eq),
        op::I64_NE => simple!(I::I64Ne),
        op::I64_LT_S => simple!(I::I64LtS),
        op::I64_LT_U => simple!(I::I64LtU),
        op::I64_GT_S => simple!(I::I64GtS),
        op::I64_GT_U => simple!(I::I64GtU),
        op::I64_LE_S => simple!(I::I64LeS),
        op::I64_LE_U => simple!(I::I64LeU),
        op::I64_GE_S => simple!(I::I64GeS),
        op::I64_GE_U => simple!(I::I64GeU),
        op::F32_EQ => simple!(I::F32Eq),
        op::F32_NE => simple!(I::F32Ne),
        op::F32_LT => simple!(I::F32Lt),
        op::F32_GT => simple!(I::F32Gt),
        op::F32_LE => simple!(I::F32Le),
        op::F32_GE => simple!(I::F32Ge),
        op::F64_EQ => simple!(I::F64Eq),
        op::F64_NE => simple!(I::F64Ne),
        op::F64_LT => simple!(I::F64Lt),
        op::F64_GT => simple!(I::F64Gt),
        op::F64_LE => simple!(I::F64Le),
        op::F64_GE => simple!(I::F64Ge),
        op::I32_CLZ => simple!(I::I32Clz),
        op::I32_CTZ => simple!(I::I32Ctz),
        op::I32_POPCNT => simple!(I::I32Popcnt),
        op::I32_ADD => simple!(I::I32Add),
        op::I32_SUB => simple!(I::I32Sub),
        op::I32_MUL => simple!(I::I32Mul),
        op::I32_DIV_S => simple!(I::I32DivS),
        op::I32_DIV_U => simple!(I::I32DivU),
        op::I32_REM_S => simple!(I::I32RemS),
        op::I32_REM_U => simple!(I::I32RemU),
        op::I32_AND => simple!(I::I32And),
        op::I32_OR => simple!(I::I32Or),
        op::I32_XOR => simple!(I::I32Xor),
        op::I32_SHL => simple!(I::I32Shl),
        op::I32_SHR_S => simple!(I::I32ShrS),
        op::I32_SHR_U => simple!(I::I32ShrU),
        op::I32_ROTL => simple!(I::I32Rotl),
        op::I32_ROTR => simple!(I::I32Rotr),
        op::I64_CLZ => simple!(I::I64Clz),
        op::I64_CTZ => simple!(I::I64Ctz),
        op::I64_POPCNT => simple!(I::I64Popcnt),
        op::I64_ADD => simple!(I::I64Add),
        op::I64_SUB => simple!(I::I64Sub),
        op::I64_MUL => simple!(I::I64Mul),
        op::I64_DIV_S => simple!(I::I64DivS),
        op::I64_DIV_U => simple!(I::I64DivU),
        op::I64_REM_S => simple!(I::I64RemS),
        op::I64_REM_U => simple!(I::I64RemU),
        op::I64_AND => simple!(I::I64And),
        op::I64_OR => simple!(I::I64Or),
        op::I64_XOR => simple!(I::I64Xor),
        op::I64_SHL => simple!(I::I64Shl),
        op::I64_SHR_S => simple!(I::I64ShrS),
        op::I64_SHR_U => simple!(I::I64ShrU),
        op::I64_ROTL => simple!(I::I64Rotl),
        op::I64_ROTR => simple!(I::I64Rotr),
        op::F32_ABS => simple!(I::F32Abs),
        op::F32_NEG => simple!(I::F32Neg),
        op::F32_CEIL => simple!(I::F32Ceil),
        op::F32_FLOOR => simple!(I::F32Floor),
        op::F32_TRUNC => simple!(I::F32Trunc),
        op::F32_NEAREST => simple!(I::F32Nearest),
        op::F32_SQRT => simple!(I::F32Sqrt),
        op::F32_ADD => simple!(I::F32Add),
        op::F32_SUB => simple!(I::F32Sub),
        op::F32_MUL => simple!(I::F32Mul),
        op::F32_DIV => simple!(I::F32Div),
        op::F32_MIN => simple!(I::F32Min),
        op::F32_MAX => simple!(I::F32Max),
        op::F32_COPYSIGN => simple!(I::F32Copysign),
        op::F64_ABS => simple!(I::F64Abs),
        op::F64_NEG => simple!(I::F64Neg),
        op::F64_CEIL => simple!(I::F64Ceil),
        op::F64_FLOOR => simple!(I::F64Floor),
        op::F64_TRUNC => simple!(I::F64Trunc),
        op::F64_NEAREST => simple!(I::F64Nearest),
        op::F64_SQRT => simple!(I::F64Sqrt),
        op::F64_ADD => simple!(I::F64Add),
        op::F64_SUB => simple!(I::F64Sub),
        op::F64_MUL => simple!(I::F64Mul),
        op::F64_DIV => simple!(I::F64Div),
        op::F64_MIN => simple!(I::F64Min),
        op::F64_MAX => simple!(I::F64Max),
        op::F64_COPYSIGN => simple!(I::F64Copysign),
        op::I32_WRAP_I64 => simple!(I::I32WrapI64),
        op::I32_TRUNC_F32_S => simple!(I::I32TruncF32S),
        op::I32_TRUNC_F32_U => simple!(I::I32TruncF32U),
        op::I32_TRUNC_F64_S => simple!(I::I32TruncF64S),
        op::I32_TRUNC_F64_U => simple!(I::I32TruncF64U),
        op::I64_EXTEND_I32_S => simple!(I::I64ExtendI32S),
        op::I64_EXTEND_I32_U => simple!(I::I64ExtendI32U),
        op::I64_TRUNC_F32_S => simple!(I::I64TruncF32S),
        op::I64_TRUNC_F32_U => simple!(I::I64TruncF32U),
        op::I64_TRUNC_F64_S => simple!(I::I64TruncF64S),
        op::I64_TRUNC_F64_U => simple!(I::I64TruncF64U),
        op::F32_CONVERT_I32_S => simple!(I::F32ConvertI32S),
        op::F32_CONVERT_I32_U => simple!(I::F32ConvertI32U),
        op::F32_CONVERT_I64_S => simple!(I::F32ConvertI64S),
        op::F32_CONVERT_I64_U => simple!(I::F32ConvertI64U),
        op::F32_DEMOTE_F64 => simple!(I::F32DemoteF64),
        op::F64_CONVERT_I32_S => simple!(I::F64ConvertI32S),
        op::F64_CONVERT_I32_U => simple!(I::F64ConvertI32U),
        op::F64_CONVERT_I64_S => simple!(I::F64ConvertI64S),
        op::F64_CONVERT_I64_U => simple!(I::F64ConvertI64U),
        op::F64_PROMOTE_F32 => simple!(I::F64PromoteF32),
        op::I32_REINTERPRET_F32 => simple!(I::I32ReinterpretF32),
        op::I64_REINTERPRET_F64 => simple!(I::I64ReinterpretF64),
        op::F32_REINTERPRET_I32 => simple!(I::F32ReinterpretI32),
        op::F64_REINTERPRET_I64 => simple!(I::F64ReinterpretI64),
        other => Err(DecodeError::BadOpcode(other)),
    }
}

/// Encode one instruction.
pub fn write_instr(out: &mut Vec<u8>, instr: &Instruction) {
    use Instruction as I;
    macro_rules! m {
        ($op:expr) => {
            out.push($op)
        };
        ($op:expr, u32 $v:expr) => {{
            out.push($op);
            leb128::write_u32(out, $v);
        }};
        ($op:expr, memarg $v:expr) => {{
            out.push($op);
            write_memarg(out, $v);
        }};
    }
    match instr {
        I::Unreachable => m!(op::UNREACHABLE),
        I::Nop => m!(op::NOP),
        I::Block(bt) => {
            out.push(op::BLOCK);
            write_block_type(out, *bt);
        }
        I::Loop(bt) => {
            out.push(op::LOOP);
            write_block_type(out, *bt);
        }
        I::If(bt) => {
            out.push(op::IF);
            write_block_type(out, *bt);
        }
        I::Else => m!(op::ELSE),
        I::End => m!(op::END),
        I::Br(d) => m!(op::BR, u32 * d),
        I::BrIf(d) => m!(op::BR_IF, u32 * d),
        I::BrTable(bt) => {
            out.push(op::BR_TABLE);
            leb128::write_u32(out, bt.targets.len() as u32);
            for t in &bt.targets {
                leb128::write_u32(out, *t);
            }
            leb128::write_u32(out, bt.default);
        }
        I::Return => m!(op::RETURN),
        I::Call(f) => m!(op::CALL, u32 * f),
        I::CallIndirect { type_idx, table_idx } => {
            out.push(op::CALL_INDIRECT);
            leb128::write_u32(out, *type_idx);
            leb128::write_u32(out, *table_idx);
        }
        I::Drop => m!(op::DROP),
        I::Select => m!(op::SELECT),
        I::LocalGet(i) => m!(op::LOCAL_GET, u32 * i),
        I::LocalSet(i) => m!(op::LOCAL_SET, u32 * i),
        I::LocalTee(i) => m!(op::LOCAL_TEE, u32 * i),
        I::GlobalGet(i) => m!(op::GLOBAL_GET, u32 * i),
        I::GlobalSet(i) => m!(op::GLOBAL_SET, u32 * i),
        I::I32Load(a) => m!(op::I32_LOAD, memarg * a),
        I::I64Load(a) => m!(op::I64_LOAD, memarg * a),
        I::F32Load(a) => m!(op::F32_LOAD, memarg * a),
        I::F64Load(a) => m!(op::F64_LOAD, memarg * a),
        I::I32Load8S(a) => m!(op::I32_LOAD8_S, memarg * a),
        I::I32Load8U(a) => m!(op::I32_LOAD8_U, memarg * a),
        I::I32Load16S(a) => m!(op::I32_LOAD16_S, memarg * a),
        I::I32Load16U(a) => m!(op::I32_LOAD16_U, memarg * a),
        I::I64Load8S(a) => m!(op::I64_LOAD8_S, memarg * a),
        I::I64Load8U(a) => m!(op::I64_LOAD8_U, memarg * a),
        I::I64Load16S(a) => m!(op::I64_LOAD16_S, memarg * a),
        I::I64Load16U(a) => m!(op::I64_LOAD16_U, memarg * a),
        I::I64Load32S(a) => m!(op::I64_LOAD32_S, memarg * a),
        I::I64Load32U(a) => m!(op::I64_LOAD32_U, memarg * a),
        I::I32Store(a) => m!(op::I32_STORE, memarg * a),
        I::I64Store(a) => m!(op::I64_STORE, memarg * a),
        I::F32Store(a) => m!(op::F32_STORE, memarg * a),
        I::F64Store(a) => m!(op::F64_STORE, memarg * a),
        I::I32Store8(a) => m!(op::I32_STORE8, memarg * a),
        I::I32Store16(a) => m!(op::I32_STORE16, memarg * a),
        I::I64Store8(a) => m!(op::I64_STORE8, memarg * a),
        I::I64Store16(a) => m!(op::I64_STORE16, memarg * a),
        I::I64Store32(a) => m!(op::I64_STORE32, memarg * a),
        I::MemorySize => {
            out.push(op::MEMORY_SIZE);
            out.push(0x00);
        }
        I::MemoryGrow => {
            out.push(op::MEMORY_GROW);
            out.push(0x00);
        }
        I::I32Const(v) => {
            out.push(op::I32_CONST);
            leb128::write_i32(out, *v);
        }
        I::I64Const(v) => {
            out.push(op::I64_CONST);
            leb128::write_i64(out, *v);
        }
        I::F32Const(v) => {
            out.push(op::F32_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I::F64Const(v) => {
            out.push(op::F64_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I::I32Eqz => m!(op::I32_EQZ),
        I::I32Eq => m!(op::I32_EQ),
        I::I32Ne => m!(op::I32_NE),
        I::I32LtS => m!(op::I32_LT_S),
        I::I32LtU => m!(op::I32_LT_U),
        I::I32GtS => m!(op::I32_GT_S),
        I::I32GtU => m!(op::I32_GT_U),
        I::I32LeS => m!(op::I32_LE_S),
        I::I32LeU => m!(op::I32_LE_U),
        I::I32GeS => m!(op::I32_GE_S),
        I::I32GeU => m!(op::I32_GE_U),
        I::I64Eqz => m!(op::I64_EQZ),
        I::I64Eq => m!(op::I64_EQ),
        I::I64Ne => m!(op::I64_NE),
        I::I64LtS => m!(op::I64_LT_S),
        I::I64LtU => m!(op::I64_LT_U),
        I::I64GtS => m!(op::I64_GT_S),
        I::I64GtU => m!(op::I64_GT_U),
        I::I64LeS => m!(op::I64_LE_S),
        I::I64LeU => m!(op::I64_LE_U),
        I::I64GeS => m!(op::I64_GE_S),
        I::I64GeU => m!(op::I64_GE_U),
        I::F32Eq => m!(op::F32_EQ),
        I::F32Ne => m!(op::F32_NE),
        I::F32Lt => m!(op::F32_LT),
        I::F32Gt => m!(op::F32_GT),
        I::F32Le => m!(op::F32_LE),
        I::F32Ge => m!(op::F32_GE),
        I::F64Eq => m!(op::F64_EQ),
        I::F64Ne => m!(op::F64_NE),
        I::F64Lt => m!(op::F64_LT),
        I::F64Gt => m!(op::F64_GT),
        I::F64Le => m!(op::F64_LE),
        I::F64Ge => m!(op::F64_GE),
        I::I32Clz => m!(op::I32_CLZ),
        I::I32Ctz => m!(op::I32_CTZ),
        I::I32Popcnt => m!(op::I32_POPCNT),
        I::I32Add => m!(op::I32_ADD),
        I::I32Sub => m!(op::I32_SUB),
        I::I32Mul => m!(op::I32_MUL),
        I::I32DivS => m!(op::I32_DIV_S),
        I::I32DivU => m!(op::I32_DIV_U),
        I::I32RemS => m!(op::I32_REM_S),
        I::I32RemU => m!(op::I32_REM_U),
        I::I32And => m!(op::I32_AND),
        I::I32Or => m!(op::I32_OR),
        I::I32Xor => m!(op::I32_XOR),
        I::I32Shl => m!(op::I32_SHL),
        I::I32ShrS => m!(op::I32_SHR_S),
        I::I32ShrU => m!(op::I32_SHR_U),
        I::I32Rotl => m!(op::I32_ROTL),
        I::I32Rotr => m!(op::I32_ROTR),
        I::I64Clz => m!(op::I64_CLZ),
        I::I64Ctz => m!(op::I64_CTZ),
        I::I64Popcnt => m!(op::I64_POPCNT),
        I::I64Add => m!(op::I64_ADD),
        I::I64Sub => m!(op::I64_SUB),
        I::I64Mul => m!(op::I64_MUL),
        I::I64DivS => m!(op::I64_DIV_S),
        I::I64DivU => m!(op::I64_DIV_U),
        I::I64RemS => m!(op::I64_REM_S),
        I::I64RemU => m!(op::I64_REM_U),
        I::I64And => m!(op::I64_AND),
        I::I64Or => m!(op::I64_OR),
        I::I64Xor => m!(op::I64_XOR),
        I::I64Shl => m!(op::I64_SHL),
        I::I64ShrS => m!(op::I64_SHR_S),
        I::I64ShrU => m!(op::I64_SHR_U),
        I::I64Rotl => m!(op::I64_ROTL),
        I::I64Rotr => m!(op::I64_ROTR),
        I::F32Abs => m!(op::F32_ABS),
        I::F32Neg => m!(op::F32_NEG),
        I::F32Ceil => m!(op::F32_CEIL),
        I::F32Floor => m!(op::F32_FLOOR),
        I::F32Trunc => m!(op::F32_TRUNC),
        I::F32Nearest => m!(op::F32_NEAREST),
        I::F32Sqrt => m!(op::F32_SQRT),
        I::F32Add => m!(op::F32_ADD),
        I::F32Sub => m!(op::F32_SUB),
        I::F32Mul => m!(op::F32_MUL),
        I::F32Div => m!(op::F32_DIV),
        I::F32Min => m!(op::F32_MIN),
        I::F32Max => m!(op::F32_MAX),
        I::F32Copysign => m!(op::F32_COPYSIGN),
        I::F64Abs => m!(op::F64_ABS),
        I::F64Neg => m!(op::F64_NEG),
        I::F64Ceil => m!(op::F64_CEIL),
        I::F64Floor => m!(op::F64_FLOOR),
        I::F64Trunc => m!(op::F64_TRUNC),
        I::F64Nearest => m!(op::F64_NEAREST),
        I::F64Sqrt => m!(op::F64_SQRT),
        I::F64Add => m!(op::F64_ADD),
        I::F64Sub => m!(op::F64_SUB),
        I::F64Mul => m!(op::F64_MUL),
        I::F64Div => m!(op::F64_DIV),
        I::F64Min => m!(op::F64_MIN),
        I::F64Max => m!(op::F64_MAX),
        I::F64Copysign => m!(op::F64_COPYSIGN),
        I::I32WrapI64 => m!(op::I32_WRAP_I64),
        I::I32TruncF32S => m!(op::I32_TRUNC_F32_S),
        I::I32TruncF32U => m!(op::I32_TRUNC_F32_U),
        I::I32TruncF64S => m!(op::I32_TRUNC_F64_S),
        I::I32TruncF64U => m!(op::I32_TRUNC_F64_U),
        I::I64ExtendI32S => m!(op::I64_EXTEND_I32_S),
        I::I64ExtendI32U => m!(op::I64_EXTEND_I32_U),
        I::I64TruncF32S => m!(op::I64_TRUNC_F32_S),
        I::I64TruncF32U => m!(op::I64_TRUNC_F32_U),
        I::I64TruncF64S => m!(op::I64_TRUNC_F64_S),
        I::I64TruncF64U => m!(op::I64_TRUNC_F64_U),
        I::F32ConvertI32S => m!(op::F32_CONVERT_I32_S),
        I::F32ConvertI32U => m!(op::F32_CONVERT_I32_U),
        I::F32ConvertI64S => m!(op::F32_CONVERT_I64_S),
        I::F32ConvertI64U => m!(op::F32_CONVERT_I64_U),
        I::F32DemoteF64 => m!(op::F32_DEMOTE_F64),
        I::F64ConvertI32S => m!(op::F64_CONVERT_I32_S),
        I::F64ConvertI32U => m!(op::F64_CONVERT_I32_U),
        I::F64ConvertI64S => m!(op::F64_CONVERT_I64_S),
        I::F64ConvertI64U => m!(op::F64_CONVERT_I64_U),
        I::F64PromoteF32 => m!(op::F64_PROMOTE_F32),
        I::I32ReinterpretF32 => m!(op::I32_REINTERPRET_F32),
        I::I64ReinterpretF64 => m!(op::I64_REINTERPRET_F64),
        I::F32ReinterpretI32 => m!(op::F32_REINTERPRET_I32),
        I::F64ReinterpretI64 => m!(op::F64_REINTERPRET_I64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        let mut buf = Vec::new();
        write_instr(&mut buf, &i);
        let (got, n) = read_instr(&buf).unwrap();
        assert_eq!(got, i);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn simple_ops_roundtrip() {
        for i in [
            Instruction::Unreachable,
            Instruction::Nop,
            Instruction::Return,
            Instruction::Drop,
            Instruction::Select,
            Instruction::I32Add,
            Instruction::I64Rotr,
            Instruction::F32Sqrt,
            Instruction::F64Copysign,
            Instruction::I32WrapI64,
            Instruction::F64ReinterpretI64,
            Instruction::MemorySize,
            Instruction::MemoryGrow,
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn immediates_roundtrip() {
        roundtrip(Instruction::Br(3));
        roundtrip(Instruction::BrIf(0));
        roundtrip(Instruction::Call(1234567));
        roundtrip(Instruction::CallIndirect { type_idx: 7, table_idx: 0 });
        roundtrip(Instruction::LocalGet(99));
        roundtrip(Instruction::GlobalSet(2));
        roundtrip(Instruction::I32Const(-42));
        roundtrip(Instruction::I64Const(i64::MIN));
        roundtrip(Instruction::F32Const(3.5));
        roundtrip(Instruction::F64Const(-0.25));
        roundtrip(Instruction::I32Load(MemArg { align: 2, offset: 1024 }));
        roundtrip(Instruction::I64Store32(MemArg { align: 0, offset: 0 }));
    }

    #[test]
    fn block_types_roundtrip() {
        roundtrip(Instruction::Block(BlockType::Empty));
        roundtrip(Instruction::Loop(BlockType::Value(ValType::I64)));
        roundtrip(Instruction::If(BlockType::Func(5)));
    }

    #[test]
    fn br_table_roundtrip() {
        roundtrip(Instruction::BrTable(Box::new(BrTableData {
            targets: vec![0, 1, 2, 1, 0],
            default: 3,
        })));
        roundtrip(Instruction::BrTable(Box::new(BrTableData { targets: vec![], default: 0 })));
    }

    #[test]
    fn nan_const_roundtrips_bitwise() {
        let nan = f32::from_bits(0x7fc0_1234);
        let mut buf = Vec::new();
        write_instr(&mut buf, &Instruction::F32Const(nan));
        let (got, _) = read_instr(&buf).unwrap();
        match got {
            Instruction::F32Const(v) => assert_eq!(v.to_bits(), nan.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(read_instr(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(read_instr(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn memory_size_reserved_byte_enforced() {
        assert!(read_instr(&[op::MEMORY_SIZE, 0x01]).is_err());
        assert!(read_instr(&[op::MEMORY_GROW, 0x01]).is_err());
    }

    #[test]
    fn enum_is_compact() {
        // BrTable payload is boxed precisely to keep this small.
        assert!(std::mem::size_of::<Instruction>() <= 16);
    }
}
