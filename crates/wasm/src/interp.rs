//! The in-place bytecode interpreter (the WAMR-profile execution tier).
//!
//! Executes **directly from the raw code bytes** of the decoded module — no
//! per-function code expansion at all. The only derived structure is a small
//! control [`SideTable`] per function (offsets of matching `end`/`else` for
//! each opener), built lazily on a function's first call and cached on the
//! instance. This is how WAMR's classic interpreter keeps per-instance
//! memory near zero, which — multiplied by 400 containers — is the paper's
//! headline result.

use std::sync::Arc;

use bytelite::Bytes;

use crate::instance::Instance;
use crate::instr::{read_instr, Instruction};
use crate::module::Module;
use crate::numeric::{exec_simple, Simple};
use crate::types::BlockType;
use crate::values::{Slot, Trap, Value};

/// One control-structure record: where its `else`/`end` live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideEntry {
    /// Byte offset of the `block`/`loop`/`if` opcode.
    pub at: u32,
    /// Byte offset of the matching `end` opcode.
    pub end: u32,
    /// Byte offset just past the matching `else` opcode (`u32::MAX` = none).
    pub else_: u32,
}

/// Per-function control side-table, sorted by opener offset.
#[derive(Debug, Clone, Default)]
pub struct SideTable {
    entries: Vec<SideEntry>,
}

impl SideTable {
    /// Scan a function body and record every opener's matching offsets.
    pub fn build(code: &[u8]) -> Result<SideTable, Trap> {
        let mut entries: Vec<SideEntry> = Vec::new();
        let mut open: Vec<usize> = Vec::new();
        let mut pos = 0usize;
        while pos < code.len() {
            let (instr, n) = read_instr(&code[pos..])
                .map_err(|e| Trap::HostError(format!("side-table scan: {e}")))?;
            match instr {
                Instruction::Block(_) | Instruction::Loop(_) | Instruction::If(_) => {
                    open.push(entries.len());
                    entries.push(SideEntry { at: pos as u32, end: 0, else_: u32::MAX });
                }
                Instruction::Else => {
                    let idx = *open.last().expect("validated: else inside if");
                    entries[idx].else_ = (pos + 1) as u32;
                }
                Instruction::End => {
                    if let Some(idx) = open.pop() {
                        entries[idx].end = pos as u32;
                    }
                    // The final `end` (empty stack) closes the function.
                }
                _ => {}
            }
            pos += n;
        }
        Ok(SideTable { entries })
    }

    /// Look up the entry for the opener at byte offset `at`.
    #[inline]
    pub fn lookup(&self, at: u32) -> SideEntry {
        let i =
            self.entries.binary_search_by_key(&at, |e| e.at).expect("every opener has an entry");
        self.entries[i]
    }

    /// Approximate resident size — what the WAMR profile charges per
    /// function for control metadata.
    pub fn memory_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<SideEntry>()) as u64
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Label {
    is_loop: bool,
    /// Offset of the matching `end` opcode (function end for the implicit
    /// outermost label).
    end_pc: usize,
    /// Loop continuation: offset just past the `loop` opcode+blocktype.
    cont_pc: usize,
    /// Absolute operand-stack height under this label's params.
    height: usize,
    /// Values a branch to this label carries.
    br_arity: usize,
}

struct Frame {
    code: Bytes,
    side: Arc<SideTable>,
    pc: usize,
    locals: Vec<Slot>,
    labels: Vec<Label>,
    /// Operand-stack height at function entry (after args were consumed).
    base: usize,
    results: usize,
}

/// Block signature sizes (params, results) for a block type.
fn block_arity(module: &Module, bt: BlockType) -> (usize, usize) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(idx) => {
            let ft = &module.types[idx as usize];
            (ft.params.len(), ft.results.len())
        }
    }
}

/// Get or lazily build the side table for a local function.
fn side_table(inst: &mut Instance, local_idx: usize) -> Result<Arc<SideTable>, Trap> {
    if let Some(t) = &inst.side_tables[local_idx] {
        return Ok(Arc::clone(t));
    }
    let code = inst.module.bodies[local_idx].code.clone();
    let table = Arc::new(SideTable::build(&code)?);
    inst.stats.side_table_bytes += table.memory_bytes();
    inst.side_tables[local_idx] = Some(Arc::clone(&table));
    Ok(table)
}

/// Most recycled buffers kept per pool. Deep recursion can pop hundreds of
/// frames at once; keeping a bounded stash is enough to make steady-state
/// call chains allocation-free without hoarding memory.
const POOL_CAP: usize = 64;

fn make_frame(
    inst: &mut Instance,
    func_idx: u32,
    args: &[Slot],
    base: usize,
) -> Result<Frame, Trap> {
    let imported = inst.module.num_imported_funcs();
    let local_idx = (func_idx - imported) as usize;
    let body = &inst.module.bodies[local_idx];
    let ft = inst.module.func_type(func_idx).expect("validated");
    let results = ft.results.len();
    let mut locals = inst.locals_pool.pop().unwrap_or_default();
    locals.clear();
    locals.extend_from_slice(args);
    locals.resize(locals.len() + body.local_count() as usize, Slot(0));
    let code = body.code.clone();
    let side = side_table(inst, local_idx)?;
    let func_label = Label {
        is_loop: false,
        end_pc: code.len().saturating_sub(1),
        cont_pc: 0,
        height: base,
        br_arity: results,
    };
    let mut labels = inst.labels_pool.pop().unwrap_or_default();
    labels.clear();
    labels.push(func_label);
    Ok(Frame { code, side, pc: 0, locals, labels, base, results })
}

/// Return a popped frame's buffers to the instance pools for reuse.
fn recycle_frame(inst: &mut Instance, frame: Frame) {
    if inst.locals_pool.len() < POOL_CAP {
        inst.locals_pool.push(frame.locals);
    }
    if inst.labels_pool.len() < POOL_CAP {
        inst.labels_pool.push(frame.labels);
    }
}

/// Move the top `arity` stack slots down to `dest` and drop everything in
/// between — the branch/return stack adjustment, without the temporary
/// vector a `split_off` would allocate.
#[inline]
fn shift_down(stack: &mut Vec<Slot>, dest: usize, arity: usize) {
    let src = stack.len() - arity;
    if src > dest {
        stack.copy_within(src.., dest);
    }
    stack.truncate(dest + arity);
}

/// Invoke `func_idx` with typed arguments through the in-place interpreter.
pub(crate) fn invoke(
    inst: &mut Instance,
    func_idx: u32,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let imported = inst.module.num_imported_funcs();
    if func_idx < imported {
        return inst.call_host(func_idx, args);
    }
    let result_types = inst.module.func_type(func_idx).expect("validated").results.clone();

    // Borrow the instance's reusable operand stack for this invocation so
    // repeated invokes share one allocation (host functions cannot re-enter
    // the interpreter, so the stack is never borrowed twice).
    let mut stack = std::mem::take(&mut inst.value_stack);
    stack.clear();
    stack.reserve(64);
    let outcome = run(inst, &mut stack, func_idx, args);
    let result = outcome.map(|()| {
        result_types.iter().zip(stack.drain(..)).map(|(t, s)| Value::from_slot(s, *t)).collect()
    });
    stack.clear();
    inst.value_stack = stack;
    result
}

/// The interpreter main loop, operating on a borrowed operand stack.
fn run(
    inst: &mut Instance,
    stack: &mut Vec<Slot>,
    func_idx: u32,
    args: &[Value],
) -> Result<(), Trap> {
    let arg_slots: Vec<Slot> = args.iter().map(|v| v.to_slot()).collect();
    let mut frames = vec![make_frame(inst, func_idx, &arg_slots, 0)?];

    'outer: loop {
        let frame = frames.last_mut().expect("at least one frame");
        // Function epilogue: natural fall-through past the final `end`, or a
        // branch that jumped past it.
        if frame.pc >= frame.code.len() {
            let results = frame.results;
            let base = frame.base;
            shift_down(stack, base, results);
            let done = frames.pop().expect("frame being popped");
            recycle_frame(inst, done);
            if frames.is_empty() {
                break 'outer;
            }
            continue;
        }

        let at = frame.pc;
        let (instr, n) = read_instr(&frame.code[at..])
            .map_err(|e| Trap::HostError(format!("decode during execution: {e}")))?;
        frame.pc += n;
        inst.burn(1)?;
        if stack.len() as u64 > inst.stats.peak_stack_slots {
            inst.stats.peak_stack_slots = stack.len() as u64;
        }

        // Fast path: simple instructions shared with the lowered tier.
        // (Re-borrow pieces to satisfy the borrow checker.)
        {
            let frame = frames.last_mut().expect("frame");
            match exec_simple(
                &instr,
                stack,
                &mut frame.locals,
                &mut inst.globals,
                &mut inst.memory,
            )? {
                Simple::Done => continue,
                Simple::NotSimple => {}
            }
        }

        match instr {
            Instruction::Unreachable => return Err(Trap::Unreachable),
            Instruction::Block(bt) => {
                let (params, results) = block_arity(&inst.module, bt);
                let frame = frames.last_mut().expect("frame");
                let entry = frame.side.lookup(at as u32);
                frame.labels.push(Label {
                    is_loop: false,
                    end_pc: entry.end as usize,
                    cont_pc: 0,
                    height: stack.len() - params,
                    br_arity: results,
                });
            }
            Instruction::Loop(bt) => {
                let (params, _results) = block_arity(&inst.module, bt);
                let frame = frames.last_mut().expect("frame");
                let entry = frame.side.lookup(at as u32);
                frame.labels.push(Label {
                    is_loop: true,
                    end_pc: entry.end as usize,
                    cont_pc: frame.pc,
                    height: stack.len() - params,
                    br_arity: params,
                });
            }
            Instruction::If(bt) => {
                let cond = stack.pop().expect("validated").i32();
                let (params, results) = block_arity(&inst.module, bt);
                let frame = frames.last_mut().expect("frame");
                let entry = frame.side.lookup(at as u32);
                if cond != 0 {
                    frame.labels.push(Label {
                        is_loop: false,
                        end_pc: entry.end as usize,
                        cont_pc: 0,
                        height: stack.len() - params,
                        br_arity: results,
                    });
                } else if entry.else_ != u32::MAX {
                    frame.pc = entry.else_ as usize;
                    frame.labels.push(Label {
                        is_loop: false,
                        end_pc: entry.end as usize,
                        cont_pc: 0,
                        height: stack.len() - params,
                        br_arity: results,
                    });
                } else {
                    // No else: skip the whole construct.
                    frame.pc = entry.end as usize + 1;
                }
            }
            Instruction::Else => {
                // End of the then-branch: jump to the matching `end`.
                let frame = frames.last_mut().expect("frame");
                let label = frame.labels.last().expect("validated: else has label");
                frame.pc = label.end_pc;
            }
            Instruction::End => {
                let frame = frames.last_mut().expect("frame");
                frame.labels.pop();
                // Function return is handled by the pc >= len check.
            }
            Instruction::Br(depth) => {
                branch(frames.last_mut().expect("frame"), stack, depth);
            }
            Instruction::BrIf(depth) => {
                let cond = stack.pop().expect("validated").i32();
                if cond != 0 {
                    branch(frames.last_mut().expect("frame"), stack, depth);
                }
            }
            Instruction::BrTable(data) => {
                let idx = stack.pop().expect("validated").u32() as usize;
                let depth = data.targets.get(idx).copied().unwrap_or(data.default);
                branch(frames.last_mut().expect("frame"), stack, depth);
            }
            Instruction::Return => {
                let frame = frames.last_mut().expect("frame");
                // Jump past the function's final end; epilogue handles it.
                frame.pc = frame.code.len();
                shift_down(stack, frame.base, frame.results);
                frame.labels.clear();
            }
            Instruction::Call(f) => {
                call(inst, &mut frames, stack, f)?;
            }
            Instruction::CallIndirect { type_idx, .. } => {
                let elem = stack.pop().expect("validated").u32() as usize;
                let f = resolve_indirect(inst, type_idx, elem)?;
                call(inst, &mut frames, stack, f)?;
            }
            other => unreachable!("simple instruction fell through: {other:?}"),
        }
    }

    Ok(())
}

/// Resolve a `call_indirect` target and check its signature.
fn resolve_indirect(inst: &Instance, type_idx: u32, elem: usize) -> Result<u32, Trap> {
    let entry = inst.table.get(elem).ok_or(Trap::TableOutOfBounds)?;
    let f = entry.ok_or(Trap::UninitializedElement)?;
    let expected = &inst.module.types[type_idx as usize];
    let actual = inst.module.func_type(f).ok_or(Trap::UninitializedElement)?;
    if actual != expected {
        return Err(Trap::IndirectCallTypeMismatch);
    }
    Ok(f)
}

/// Perform a branch to `depth` within the current frame.
fn branch(frame: &mut Frame, stack: &mut Vec<Slot>, depth: u32) {
    let li = frame.labels.len() - 1 - depth as usize;
    let label = frame.labels[li];
    shift_down(stack, label.height, label.br_arity);
    if label.is_loop {
        frame.pc = label.cont_pc;
        frame.labels.truncate(li + 1);
    } else {
        frame.pc = label.end_pc + 1;
        frame.labels.truncate(li);
    }
}

/// Call a function (host or Wasm) from inside the interpreter loop.
fn call(
    inst: &mut Instance,
    frames: &mut Vec<Frame>,
    stack: &mut Vec<Slot>,
    func_idx: u32,
) -> Result<(), Trap> {
    let imported = inst.module.num_imported_funcs();
    if func_idx < imported {
        // Host calls need the typed signature; clone it once here (the hot
        // Wasm→Wasm path below avoids the allocation entirely).
        let ft = inst.module.func_type(func_idx).expect("validated").clone();
        let split = stack.len() - ft.params.len();
        let args: Vec<Value> =
            ft.params.iter().zip(&stack[split..]).map(|(t, s)| Value::from_slot(*s, *t)).collect();
        stack.truncate(split);
        let results = inst.call_host(func_idx, &args)?;
        if results.len() != ft.results.len() {
            return Err(Trap::HostError(format!(
                "host function returned {} values, expected {}",
                results.len(),
                ft.results.len()
            )));
        }
        stack.extend(results.into_iter().map(Value::to_slot));
        Ok(())
    } else {
        if frames.len() >= inst.config.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        let n_params = inst.module.func_type(func_idx).expect("validated").params.len();
        let split = stack.len() - n_params;
        // Arguments become the callee's locals directly from the stack top;
        // make_frame copies them into a pooled buffer, no temporary vector.
        let frame = make_frame(inst, func_idx, &stack[split..], split)?;
        stack.truncate(split);
        frames.push(frame);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instance::{Imports, Instance, InstanceConfig};
    use crate::types::{FuncType, ValType};

    fn instantiate(b: ModuleBuilder) -> Instance {
        Instance::instantiate(Arc::new(b.build()), Imports::new(), InstanceConfig::default())
            .unwrap()
    }

    #[test]
    fn side_table_structure() {
        // block / if / else / end / end / end(function)
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.local_get(0);
                f.if_else(
                    BlockType::Value(ValType::I32),
                    |f| {
                        f.i32_const(1);
                    },
                    |f| {
                        f.i32_const(2);
                    },
                );
            });
        });
        let m = b.build();
        let table = SideTable::build(&m.bodies[0].code).unwrap();
        assert_eq!(table.len(), 2);
        let code = &m.bodies[0].code;
        let outer = table.lookup(0);
        assert_eq!(code[outer.end as usize], 0x0b);
        assert_eq!(outer.else_, u32::MAX);
        assert!(table.memory_bytes() > 0);
    }

    #[test]
    fn factorial_loop() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I32);
            f.i32_const(1).local_set(acc);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(Instruction::I32Eqz).br_if(1);
                    f.local_get(acc).local_get(0).op(Instruction::I32Mul).local_set(acc);
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(acc);
        });
        b.export_func("fact", f);
        let mut inst = instantiate(b);
        let out = inst.invoke("fact", &[Value::I32(6)]).unwrap();
        assert_eq!(out, vec![Value::I32(720)]);
        assert!(inst.stats().instrs_retired > 30);
        assert!(inst.stats().lowered_bytes == 0, "in-place tier compiles nothing");
        assert!(inst.stats().side_table_bytes > 0);
    }

    #[test]
    fn recursive_fibonacci() {
        let mut b = ModuleBuilder::new();
        let fib_sig = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
        // Declared index of the (only) local function is 0.
        let fib = b.func(fib_sig, |f| {
            f.local_get(0).i32_const(2).op(Instruction::I32LtS);
            f.if_else(
                BlockType::Value(ValType::I32),
                |f| {
                    f.local_get(0);
                },
                |f| {
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).call(0);
                    f.local_get(0).i32_const(2).op(Instruction::I32Sub).call(0);
                    f.op(Instruction::I32Add);
                },
            );
        });
        b.export_func("fib", fib);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("fib", &[Value::I32(10)]).unwrap(), vec![Value::I32(55)]);
    }

    #[test]
    fn br_table_dispatch() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.block(BlockType::Empty, |f| {
                    f.block(BlockType::Empty, |f| {
                        // Arms 0 and 1 target the two empty blocks; the
                        // default reuses arm 1.
                        f.local_get(0).br_table(vec![0, 1], 1);
                    });
                    // case 0
                    f.i32_const(100).br(1);
                });
                // case 1 and default
                f.i32_const(200);
            });
        });
        b.export_func("dispatch", f);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(0)]).unwrap(), vec![Value::I32(100)]);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(1)]).unwrap(), vec![Value::I32(200)]);
        assert_eq!(inst.invoke("dispatch", &[Value::I32(9)]).unwrap(), vec![Value::I32(200)]);
    }

    #[test]
    fn early_return() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0);
            f.if_else(
                BlockType::Empty,
                |f| {
                    f.i32_const(1).return_();
                },
                |_| {},
            );
            f.i32_const(0);
        });
        b.export_func("sign", f);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("sign", &[Value::I32(5)]).unwrap(), vec![Value::I32(1)]);
        assert_eq!(inst.invoke("sign", &[Value::I32(0)]).unwrap(), vec![Value::I32(0)]);
    }

    #[test]
    fn br_to_function_label_returns() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(9).br(0);
        });
        b.export_func("f", f);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("f", &[]).unwrap(), vec![Value::I32(9)]);
    }

    #[test]
    fn call_indirect_through_table() {
        let mut b = ModuleBuilder::new();
        let sig = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
        let double = b.func(sig.clone(), |f| {
            f.local_get(0).i32_const(2).op(Instruction::I32Mul);
        });
        let triple = b.func(sig.clone(), |f| {
            f.local_get(0).i32_const(3).op(Instruction::I32Mul);
        });
        b.table(2, Some(2));
        b.elem(0, vec![double, triple]);
        let sig_idx_holder = sig;
        let caller =
            b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), move |f| {
                let _ = &sig_idx_holder;
                f.local_get(0); // argument
                f.local_get(1); // table index
                f.call_indirect(0);
            });
        b.export_func("apply", caller);
        let mut inst = instantiate(b);
        assert_eq!(
            inst.invoke("apply", &[Value::I32(21), Value::I32(0)]).unwrap(),
            vec![Value::I32(42)]
        );
        assert_eq!(
            inst.invoke("apply", &[Value::I32(14), Value::I32(1)]).unwrap(),
            vec![Value::I32(42)]
        );
        // Out-of-bounds table index traps.
        assert_eq!(
            inst.invoke("apply", &[Value::I32(1), Value::I32(7)]),
            Err(Trap::TableOutOfBounds)
        );
    }

    #[test]
    fn unreachable_traps() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.op(Instruction::Unreachable);
        });
        b.export_func("boom", f);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("boom", &[]), Err(Trap::Unreachable));
    }

    #[test]
    fn deep_recursion_overflows() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.call(0);
        });
        b.export_func("recur", f);
        let mut inst = instantiate(b);
        assert_eq!(inst.invoke("recur", &[]), Err(Trap::StackOverflow));
    }

    #[test]
    fn side_table_cached_across_calls() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.i32_const(3);
            });
        });
        b.export_func("f", f);
        let mut inst = instantiate(b);
        inst.invoke("f", &[]).unwrap();
        let bytes_once = inst.stats().side_table_bytes;
        inst.invoke("f", &[]).unwrap();
        assert_eq!(inst.stats().side_table_bytes, bytes_once, "built once, reused");
    }
}
