//! LEB128 variable-length integer encoding (WebAssembly binary format §5.2).

use crate::error::DecodeError;

/// Encode an unsigned 32-bit integer.
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode an unsigned 64-bit integer.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode a signed 32-bit integer (SLEB128).
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64)
}

/// Encode a signed 64-bit integer (SLEB128).
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign = byte & 0x40 != 0;
        if (v == 0 && !sign) || (v == -1 && sign) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned 32-bit integer; returns (value, bytes consumed).
pub fn read_u32(buf: &[u8]) -> Result<(u32, usize), DecodeError> {
    let (v, n) = read_u64_impl(buf, 5)?;
    if v > u32::MAX as u64 {
        return Err(DecodeError::IntegerTooLarge);
    }
    Ok((v as u32, n))
}

/// Decode an unsigned 64-bit integer; returns (value, bytes consumed).
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize), DecodeError> {
    read_u64_impl(buf, 10)
}

fn read_u64_impl(buf: &[u8], max_bytes: usize) -> Result<(u64, usize), DecodeError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate().take(max_bytes) {
        let low = (byte & 0x7f) as u64;
        // Check the final byte doesn't overflow the target width.
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(DecodeError::IntegerTooLarge);
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    if buf.len() < max_bytes {
        Err(DecodeError::UnexpectedEof)
    } else {
        Err(DecodeError::IntegerTooLong)
    }
}

/// Decode a signed 32-bit integer; returns (value, bytes consumed).
pub fn read_i32(buf: &[u8]) -> Result<(i32, usize), DecodeError> {
    let (v, n) = read_i64_impl(buf, 5)?;
    if v > i32::MAX as i64 || v < i32::MIN as i64 {
        return Err(DecodeError::IntegerTooLarge);
    }
    Ok((v as i32, n))
}

/// Decode a signed 64-bit integer; returns (value, bytes consumed).
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize), DecodeError> {
    read_i64_impl(buf, 10)
}

fn read_i64_impl(buf: &[u8], max_bytes: usize) -> Result<(i64, usize), DecodeError> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate().take(max_bytes) {
        if shift >= 64 {
            return Err(DecodeError::IntegerTooLarge);
        }
        result |= ((byte & 0x7f) as i64) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            // Sign-extend.
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Ok((result, i + 1));
        }
    }
    if buf.len() < max_bytes {
        Err(DecodeError::UnexpectedEof)
    } else {
        Err(DecodeError::IntegerTooLong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(v: u32) {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        let (got, n) = read_u32(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(n, buf.len());
    }

    fn roundtrip_i64(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let (got, n) = read_i64(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn u32_edges() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX] {
            roundtrip_u32(v);
        }
    }

    #[test]
    fn i64_edges() {
        for v in [0, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN, 624485, -123456] {
            roundtrip_i64(v);
        }
    }

    #[test]
    fn i32_roundtrip_edges() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 42, -42] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let (got, n) = read_i32(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 624485);
        assert_eq!(buf, vec![0xe5, 0x8e, 0x26]);
        buf.clear();
        write_i64(&mut buf, -123456);
        assert_eq!(buf, vec![0xc0, 0xbb, 0x78]);
    }

    #[test]
    fn truncated_input() {
        assert_eq!(read_u32(&[0x80]), Err(DecodeError::UnexpectedEof));
        assert_eq!(read_u32(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn overlong_rejected() {
        // 6 continuation bytes for a u32.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]).is_err());
        // Too-large final byte for u32.
        assert!(read_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f]).is_err());
    }

    #[test]
    fn u64_max() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let (got, n) = read_u64(&buf).unwrap();
        assert_eq!(got, u64::MAX);
        assert_eq!(n, 10);
    }
}
