//! # wasm-core — a from-scratch WebAssembly (MVP) implementation
//!
//! This crate is the execution substrate shared by every simulated Wasm
//! engine in the reproduction (WAMR, Wasmtime, Wasmer, WasmEdge profiles).
//! It implements the WebAssembly core specification's MVP feature set:
//!
//! * the **binary format**: LEB128, all MVP sections, decoding
//!   ([`decode`]) and encoding ([`encode`]) with full round-trip fidelity;
//! * a **module builder** ([`builder`]) used as our "compiler" — the
//!   workloads crate assembles the paper's minimal-C-microservice-equivalent
//!   modules programmatically, since no offline C toolchain exists here;
//! * a **validator** ([`validate`]) implementing the spec's type-checking
//!   algorithm with value/control stacks;
//! * two execution tiers whose *memory/startup trade-off is the paper's
//!   subject*:
//!   [`interp`] executes **in place** from the raw code bytes with only a
//!   small lazily-built control side-table (how WAMR's classic interpreter
//!   stays tiny), while [`lowered`] first compiles every function into a
//!   wide, jump-resolved internal representation (how JIT/AOT engines like
//!   Wasmtime trade memory for speed);
//! * [`instance`]: linking, imports/exports, start function, host functions
//!   (used by the `wasi-sys` crate), linear [`memory`], tables, globals.
//!
//! Both tiers are exercised against each other by property tests; the
//! engines crate charges their measured allocations to the simulated kernel.

pub mod builder;
pub mod cache;
pub mod decode;
pub mod encode;
pub mod error;
pub mod instance;
pub mod instr;
pub mod interp;
pub mod leb128;
pub mod lowered;
pub mod memory;
pub mod module;
pub(crate) mod numeric;
pub mod types;
pub mod validate;
pub mod values;
pub mod wat;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use cache::{ArtifactCache, CacheStats};
pub use decode::decode_module;
pub use encode::encode_module;
pub use error::{DecodeError, ValidationError};
pub use instance::{
    EpochClock, EpochConfig, ExecStats, ExecTier, HostFunc, Imports, Instance, InstanceConfig,
};
pub use instr::Instruction;
pub use memory::{LinearMemory, WASM_PAGE_SIZE};
pub use module::{FuncBody, Module};
pub use types::{FuncType, GlobalType, Limits, ValType};
pub use validate::validate_module;
pub use values::{Trap, Value};
