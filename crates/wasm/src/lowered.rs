//! The lowered execution tier (the Wasmtime/Wasmer/WasmEdge-profile tier).
//!
//! Every function is compiled — eagerly, at instantiation — into a wide
//! internal representation with all control flow resolved to direct jumps
//! and all immediates decoded. Execution is faster per instruction than the
//! in-place interpreter, but the lowered code is roughly an order of
//! magnitude larger than the bytecode (each [`LInstr`] is 16 bytes versus
//! 1–3 bytes of bytecode) and compiling costs startup time. This is exactly
//! the JIT/AOT memory/startup trade-off the paper measures against WAMR's
//! interpreter, reproduced here as real, runnable machinery.

use std::sync::Arc;

use crate::instance::Instance;
use crate::instr::{read_instr, Instruction};
use crate::module::Module;
use crate::numeric::{exec_simple, Simple};
use crate::types::BlockType;
use crate::values::{Slot, Trap, Value};

/// A branch target with its stack fixup: truncate the operand stack to
/// `height` (relative to the frame base), keeping the top `arity` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchTarget {
    pub target: u32,
    pub height: u32,
    pub arity: u32,
}

/// Payload of a lowered `br_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchTableData {
    pub targets: Vec<BranchTarget>,
    pub default: BranchTarget,
}

/// One lowered instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum LInstr {
    /// Any non-control instruction, executed by the shared simple-op core.
    Simple(Instruction),
    Unreachable,
    /// Unconditional jump with no stack fixup (then-branch → past else).
    Jump(u32),
    /// `br`: fixup + jump.
    Branch(BranchTarget),
    /// `if` entry: pop condition, jump when zero (heights are equal).
    BranchIfZero(u32),
    /// `br_if`: pop condition, fixup + jump when non-zero.
    BranchIf(BranchTarget),
    /// `br_table`: pop index, select arm, fixup + jump.
    BranchTable(Box<BranchTableData>),
    /// Function return.
    Return,
    Call(u32),
    CallIndirect {
        type_idx: u32,
    },
}

/// A function compiled to the lowered representation.
#[derive(Debug)]
pub struct LoweredFunc {
    pub instrs: Vec<LInstr>,
    pub param_count: usize,
    pub local_count: usize,
    pub result_count: usize,
}

impl LoweredFunc {
    /// Resident bytes of the compiled representation — what the JIT/AOT
    /// engine profiles charge as "machine code".
    pub fn memory_bytes(&self) -> u64 {
        let base = self.instrs.len() * std::mem::size_of::<LInstr>();
        let tables: usize = self
            .instrs
            .iter()
            .map(|i| match i {
                LInstr::BranchTable(t) => {
                    std::mem::size_of::<BranchTableData>()
                        + t.targets.len() * std::mem::size_of::<BranchTarget>()
                }
                _ => 0,
            })
            .sum();
        (base + tables) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtlKind {
    Func,
    Block,
    Loop,
    If,
}

struct Ctl {
    kind: CtlKind,
    /// Static stack height under this construct's params.
    height: u32,
    params: u32,
    results: u32,
    /// Loop head (instr index) for backward branches.
    head: u32,
    /// Instruction indices whose target must be patched to this construct's
    /// end. The second element selects the slot inside a `br_table`.
    fixups: Vec<(usize, FixupSlot)>,
    /// Fixup for the `BranchIfZero` at an `if` opening (patched to the else
    /// branch or the end).
    else_fixup: Option<usize>,
    /// Whether the code *entering* this construct was reachable.
    entry_live: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupSlot {
    /// `Jump`, `Branch`, `BranchIf` scalar target.
    Scalar,
    /// `br_table` arm `i`.
    Table(usize),
    /// `br_table` default arm.
    TableDefault,
}

fn block_arity(module: &Module, bt: BlockType) -> (u32, u32) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(idx) => {
            let ft = &module.types[idx as usize];
            (ft.params.len() as u32, ft.results.len() as u32)
        }
    }
}

/// Static operand-stack effect (pops, pushes) of a *simple* instruction.
fn simple_effect(module: &Module, i: &Instruction) -> (u32, u32) {
    use Instruction as I;
    match i {
        I::Nop => (0, 0),
        I::Drop => (1, 0),
        I::Select => (3, 1),
        I::LocalGet(_) | I::GlobalGet(_) => (0, 1),
        I::LocalSet(_) | I::GlobalSet(_) => (1, 0),
        I::LocalTee(_) => (1, 1),
        I::I32Load(_)
        | I::I64Load(_)
        | I::F32Load(_)
        | I::F64Load(_)
        | I::I32Load8S(_)
        | I::I32Load8U(_)
        | I::I32Load16S(_)
        | I::I32Load16U(_)
        | I::I64Load8S(_)
        | I::I64Load8U(_)
        | I::I64Load16S(_)
        | I::I64Load16U(_)
        | I::I64Load32S(_)
        | I::I64Load32U(_) => (1, 1),
        I::I32Store(_)
        | I::I64Store(_)
        | I::F32Store(_)
        | I::F64Store(_)
        | I::I32Store8(_)
        | I::I32Store16(_)
        | I::I64Store8(_)
        | I::I64Store16(_)
        | I::I64Store32(_) => (2, 0),
        I::MemorySize => (0, 1),
        I::MemoryGrow => (1, 1),
        I::I32Const(_) | I::I64Const(_) | I::F32Const(_) | I::F64Const(_) => (0, 1),
        I::I32Eqz | I::I64Eqz => (1, 1),
        // All binary relops and binops pop 2 push 1; unops pop 1 push 1;
        // conversions pop 1 push 1. Distinguish by arity groups:
        I::I32Eq
        | I::I32Ne
        | I::I32LtS
        | I::I32LtU
        | I::I32GtS
        | I::I32GtU
        | I::I32LeS
        | I::I32LeU
        | I::I32GeS
        | I::I32GeU
        | I::I64Eq
        | I::I64Ne
        | I::I64LtS
        | I::I64LtU
        | I::I64GtS
        | I::I64GtU
        | I::I64LeS
        | I::I64LeU
        | I::I64GeS
        | I::I64GeU
        | I::F32Eq
        | I::F32Ne
        | I::F32Lt
        | I::F32Gt
        | I::F32Le
        | I::F32Ge
        | I::F64Eq
        | I::F64Ne
        | I::F64Lt
        | I::F64Gt
        | I::F64Le
        | I::F64Ge => (2, 1),
        I::I32Add
        | I::I32Sub
        | I::I32Mul
        | I::I32DivS
        | I::I32DivU
        | I::I32RemS
        | I::I32RemU
        | I::I32And
        | I::I32Or
        | I::I32Xor
        | I::I32Shl
        | I::I32ShrS
        | I::I32ShrU
        | I::I32Rotl
        | I::I32Rotr
        | I::I64Add
        | I::I64Sub
        | I::I64Mul
        | I::I64DivS
        | I::I64DivU
        | I::I64RemS
        | I::I64RemU
        | I::I64And
        | I::I64Or
        | I::I64Xor
        | I::I64Shl
        | I::I64ShrS
        | I::I64ShrU
        | I::I64Rotl
        | I::I64Rotr
        | I::F32Add
        | I::F32Sub
        | I::F32Mul
        | I::F32Div
        | I::F32Min
        | I::F32Max
        | I::F32Copysign
        | I::F64Add
        | I::F64Sub
        | I::F64Mul
        | I::F64Div
        | I::F64Min
        | I::F64Max
        | I::F64Copysign => (2, 1),
        I::I32Clz
        | I::I32Ctz
        | I::I32Popcnt
        | I::I64Clz
        | I::I64Ctz
        | I::I64Popcnt
        | I::F32Abs
        | I::F32Neg
        | I::F32Ceil
        | I::F32Floor
        | I::F32Trunc
        | I::F32Nearest
        | I::F32Sqrt
        | I::F64Abs
        | I::F64Neg
        | I::F64Ceil
        | I::F64Floor
        | I::F64Trunc
        | I::F64Nearest
        | I::F64Sqrt => (1, 1),
        I::I32WrapI64
        | I::I32TruncF32S
        | I::I32TruncF32U
        | I::I32TruncF64S
        | I::I32TruncF64U
        | I::I64ExtendI32S
        | I::I64ExtendI32U
        | I::I64TruncF32S
        | I::I64TruncF32U
        | I::I64TruncF64S
        | I::I64TruncF64U
        | I::F32ConvertI32S
        | I::F32ConvertI32U
        | I::F32ConvertI64S
        | I::F32ConvertI64U
        | I::F32DemoteF64
        | I::F64ConvertI32S
        | I::F64ConvertI32U
        | I::F64ConvertI64S
        | I::F64ConvertI64U
        | I::F64PromoteF32
        | I::I32ReinterpretF32
        | I::I64ReinterpretF64
        | I::F32ReinterpretI32
        | I::F64ReinterpretI64 => (1, 1),
        I::Unreachable
        | I::Block(_)
        | I::Loop(_)
        | I::If(_)
        | I::Else
        | I::End
        | I::Br(_)
        | I::BrIf(_)
        | I::BrTable(_)
        | I::Return
        | I::Call(_)
        | I::CallIndirect { .. } => {
            let _ = module;
            unreachable!("not a simple instruction: {i:?}")
        }
    }
}

/// Compile one (validated) function into the lowered representation.
pub fn lower_function(module: &Module, func_idx: u32) -> Result<LoweredFunc, String> {
    let imported = module.num_imported_funcs();
    let body = module.func_body(func_idx).ok_or("no body (imported function)")?;
    let ft = module.func_type(func_idx).ok_or("no type")?;
    let param_count = ft.params.len();
    let local_count = body.local_count() as usize;
    let result_count = ft.results.len();
    let _ = imported;

    let mut instrs: Vec<LInstr> = Vec::with_capacity(body.code.len());
    let mut ctls: Vec<Ctl> = vec![Ctl {
        kind: CtlKind::Func,
        height: 0,
        params: 0,
        results: result_count as u32,
        head: 0,
        fixups: Vec::new(),
        else_fixup: None,
        entry_live: true,
    }];
    let mut height: u32 = 0;
    let mut live = true;

    let code = &body.code;
    let mut pos = 0usize;
    while pos < code.len() && !ctls.is_empty() {
        let (instr, n) = read_instr(&code[pos..]).map_err(|e| e.to_string())?;
        pos += n;
        match instr {
            Instruction::Block(bt) => {
                let (params, results) = block_arity(module, bt);
                ctls.push(Ctl {
                    kind: CtlKind::Block,
                    height: height.saturating_sub(params),
                    params,
                    results,
                    head: 0,
                    fixups: Vec::new(),
                    else_fixup: None,
                    entry_live: live,
                });
            }
            Instruction::Loop(bt) => {
                let (params, results) = block_arity(module, bt);
                ctls.push(Ctl {
                    kind: CtlKind::Loop,
                    height: height.saturating_sub(params),
                    params,
                    results,
                    head: instrs.len() as u32,
                    fixups: Vec::new(),
                    else_fixup: None,
                    entry_live: live,
                });
            }
            Instruction::If(bt) => {
                let (params, results) = block_arity(module, bt);
                let mut else_fixup = None;
                if live {
                    height -= 1; // condition
                    else_fixup = Some(instrs.len());
                    instrs.push(LInstr::BranchIfZero(u32::MAX));
                }
                ctls.push(Ctl {
                    kind: CtlKind::If,
                    height: height.saturating_sub(params),
                    params,
                    results,
                    head: 0,
                    fixups: Vec::new(),
                    else_fixup,
                    entry_live: live,
                });
            }
            Instruction::Else => {
                let ctl = ctls.last_mut().ok_or("else outside if")?;
                // Jump from the live end of the then-branch to the end.
                if live {
                    ctl.fixups.push((instrs.len(), FixupSlot::Scalar));
                    instrs.push(LInstr::Jump(u32::MAX));
                }
                // Patch the opening BranchIfZero to the else entry.
                if let Some(fx) = ctl.else_fixup.take() {
                    let target = instrs.len() as u32;
                    patch(&mut instrs, fx, FixupSlot::Scalar, target);
                }
                live = ctl.entry_live;
                height = ctl.height + ctl.params;
            }
            Instruction::End => {
                let ctl = ctls.pop().ok_or("unbalanced end")?;
                let end_target = instrs.len() as u32;
                // If with no else: condition-false jumps here.
                if let Some(fx) = ctl.else_fixup {
                    patch(&mut instrs, fx, FixupSlot::Scalar, end_target);
                }
                for (idx, slot) in ctl.fixups {
                    patch(&mut instrs, idx, slot, end_target);
                }
                live = ctl.entry_live;
                height = ctl.height + ctl.results;
                if ctl.kind == CtlKind::Func {
                    instrs.push(LInstr::Return);
                    break;
                }
            }
            Instruction::Br(depth) => {
                if live {
                    let idx = instrs.len();
                    let bt = resolve_branch_slot(&mut ctls, idx, FixupSlot::Scalar, depth, height);
                    instrs.push(LInstr::Branch(bt));
                    live = false;
                }
            }
            Instruction::BrIf(depth) => {
                if live {
                    height -= 1; // condition
                    let idx = instrs.len();
                    let bt = resolve_branch_slot(&mut ctls, idx, FixupSlot::Scalar, depth, height);
                    instrs.push(LInstr::BranchIf(bt));
                }
            }
            Instruction::BrTable(data) => {
                if live {
                    height -= 1; // selector
                    let mut targets = Vec::with_capacity(data.targets.len());
                    let table_idx = instrs.len();
                    for (i, t) in data.targets.iter().enumerate() {
                        targets.push(resolve_branch_slot(
                            &mut ctls,
                            table_idx,
                            FixupSlot::Table(i),
                            *t,
                            height,
                        ));
                    }
                    let default = resolve_branch_slot(
                        &mut ctls,
                        table_idx,
                        FixupSlot::TableDefault,
                        data.default,
                        height,
                    );
                    instrs
                        .push(LInstr::BranchTable(Box::new(BranchTableData { targets, default })));
                    live = false;
                }
            }
            Instruction::Return => {
                if live {
                    instrs.push(LInstr::Return);
                    live = false;
                }
            }
            Instruction::Unreachable => {
                if live {
                    instrs.push(LInstr::Unreachable);
                    live = false;
                }
            }
            Instruction::Call(f) => {
                if live {
                    let ft = module.func_type(f).ok_or("bad call target")?;
                    height -= ft.params.len() as u32;
                    height += ft.results.len() as u32;
                    instrs.push(LInstr::Call(f));
                }
            }
            Instruction::CallIndirect { type_idx, .. } => {
                if live {
                    let ft = module.types.get(type_idx as usize).ok_or("bad type index")?;
                    height -= 1 + ft.params.len() as u32;
                    height += ft.results.len() as u32;
                    instrs.push(LInstr::CallIndirect { type_idx });
                }
            }
            simple => {
                if live {
                    let (pops, pushes) = simple_effect(module, &simple);
                    height -= pops;
                    height += pushes;
                    instrs.push(LInstr::Simple(simple));
                }
            }
        }
    }

    Ok(LoweredFunc { instrs, param_count, local_count, result_count })
}

fn patch(instrs: &mut [LInstr], idx: usize, slot: FixupSlot, target: u32) {
    match (&mut instrs[idx], slot) {
        (LInstr::Jump(t), FixupSlot::Scalar) => *t = target,
        (LInstr::BranchIfZero(t), FixupSlot::Scalar) => *t = target,
        (LInstr::Branch(bt), FixupSlot::Scalar) => bt.target = target,
        (LInstr::BranchIf(bt), FixupSlot::Scalar) => bt.target = target,
        (LInstr::BranchTable(data), FixupSlot::Table(i)) => data.targets[i].target = target,
        (LInstr::BranchTable(data), FixupSlot::TableDefault) => data.default.target = target,
        (i, s) => unreachable!("bad fixup {s:?} on {i:?}"),
    }
}

fn resolve_branch_slot(
    ctls: &mut [Ctl],
    instr_idx: usize,
    slot: FixupSlot,
    depth: u32,
    _height: u32,
) -> BranchTarget {
    let li = ctls.len() - 1 - depth as usize;
    let ctl = &mut ctls[li];
    let arity = if ctl.kind == CtlKind::Loop { ctl.params } else { ctl.results };
    if ctl.kind == CtlKind::Loop {
        BranchTarget { target: ctl.head, height: ctl.height, arity }
    } else {
        ctl.fixups.push((instr_idx, slot));
        BranchTarget { target: u32::MAX, height: ctl.height, arity }
    }
}

struct Frame {
    func: Arc<LoweredFunc>,
    pc: usize,
    locals: Vec<Slot>,
    base: usize,
}

/// Invoke `func_idx` with typed arguments through the lowered executor.
pub(crate) fn invoke(
    inst: &mut Instance,
    func_idx: u32,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let imported = inst.module.num_imported_funcs();
    if func_idx < imported {
        return inst.call_host(func_idx, args);
    }
    let result_types = inst.module.func_type(func_idx).expect("validated").results.clone();

    let mut stack: Vec<Slot> = Vec::with_capacity(64);
    let arg_slots: Vec<Slot> = args.iter().map(|v| v.to_slot()).collect();
    let mut frames = vec![make_frame(inst, func_idx, arg_slots, 0)?];

    'outer: loop {
        let frame = frames.last_mut().expect("at least one frame");
        let func = Arc::clone(&frame.func);
        debug_assert!(frame.pc < func.instrs.len(), "Return terminates every path");
        let li = &func.instrs[frame.pc];
        frame.pc += 1;
        inst.burn(1)?;
        if stack.len() as u64 > inst.stats.peak_stack_slots {
            inst.stats.peak_stack_slots = stack.len() as u64;
        }

        match li {
            LInstr::Simple(i) => {
                let frame = frames.last_mut().expect("frame");
                match exec_simple(
                    i,
                    &mut stack,
                    &mut frame.locals,
                    &mut inst.globals,
                    &mut inst.memory,
                )? {
                    Simple::Done => {}
                    Simple::NotSimple => unreachable!("lowering keeps only simple ops"),
                }
            }
            LInstr::Unreachable => return Err(Trap::Unreachable),
            LInstr::Jump(t) => {
                frames.last_mut().expect("frame").pc = *t as usize;
            }
            LInstr::Branch(bt) => {
                let frame = frames.last_mut().expect("frame");
                apply_branch(&mut stack, frame, bt);
            }
            LInstr::BranchIfZero(t) => {
                let cond = stack.pop().expect("validated").i32();
                if cond == 0 {
                    frames.last_mut().expect("frame").pc = *t as usize;
                }
            }
            LInstr::BranchIf(bt) => {
                let cond = stack.pop().expect("validated").i32();
                if cond != 0 {
                    let frame = frames.last_mut().expect("frame");
                    apply_branch(&mut stack, frame, bt);
                }
            }
            LInstr::BranchTable(data) => {
                let idx = stack.pop().expect("validated").u32() as usize;
                let bt = data.targets.get(idx).unwrap_or(&data.default);
                let frame = frames.last_mut().expect("frame");
                apply_branch(&mut stack, frame, bt);
            }
            LInstr::Return => {
                let frame = frames.last().expect("frame");
                let results = frame.func.result_count;
                let base = frame.base;
                let split = stack.len() - results;
                let tail: Vec<Slot> = stack.split_off(split);
                stack.truncate(base);
                stack.extend(tail);
                frames.pop();
                if frames.is_empty() {
                    break 'outer;
                }
            }
            LInstr::Call(f) => {
                call(inst, &mut frames, &mut stack, *f)?;
            }
            LInstr::CallIndirect { type_idx } => {
                let elem = stack.pop().expect("validated").u32() as usize;
                let f = resolve_indirect(inst, *type_idx, elem)?;
                call(inst, &mut frames, &mut stack, f)?;
            }
        }
    }

    Ok(result_types.iter().zip(stack).map(|(t, s)| Value::from_slot(s, *t)).collect())
}

#[inline]
fn apply_branch(stack: &mut Vec<Slot>, frame: &mut Frame, bt: &BranchTarget) {
    let keep = bt.arity as usize;
    let split = stack.len() - keep;
    let tail: Vec<Slot> = stack.split_off(split);
    stack.truncate(frame.base + bt.height as usize);
    stack.extend(tail);
    frame.pc = bt.target as usize;
}

fn resolve_indirect(inst: &Instance, type_idx: u32, elem: usize) -> Result<u32, Trap> {
    let entry = inst.table.get(elem).ok_or(Trap::TableOutOfBounds)?;
    let f = entry.ok_or(Trap::UninitializedElement)?;
    let expected = &inst.module.types[type_idx as usize];
    let actual = inst.module.func_type(f).ok_or(Trap::UninitializedElement)?;
    if actual != expected {
        return Err(Trap::IndirectCallTypeMismatch);
    }
    Ok(f)
}

/// Get or compile the lowered code for a function.
fn lowered_func(inst: &mut Instance, func_idx: u32) -> Result<Arc<LoweredFunc>, Trap> {
    let imported = inst.module.num_imported_funcs();
    let local_idx = (func_idx - imported) as usize;
    if let Some(f) = &inst.lowered[local_idx] {
        return Ok(Arc::clone(f));
    }
    let lf = lower_function(&inst.module, func_idx).map_err(Trap::HostError)?;
    inst.stats.lowered_bytes += lf.memory_bytes();
    let arc = Arc::new(lf);
    inst.lowered[local_idx] = Some(Arc::clone(&arc));
    Ok(arc)
}

fn make_frame(
    inst: &mut Instance,
    func_idx: u32,
    args: Vec<Slot>,
    base: usize,
) -> Result<Frame, Trap> {
    let func = lowered_func(inst, func_idx)?;
    let mut locals = args;
    locals.resize(locals.len() + func.local_count, Slot(0));
    Ok(Frame { func, pc: 0, locals, base })
}

fn call(
    inst: &mut Instance,
    frames: &mut Vec<Frame>,
    stack: &mut Vec<Slot>,
    func_idx: u32,
) -> Result<(), Trap> {
    let imported = inst.module.num_imported_funcs();
    if func_idx < imported {
        // Host calls need the typed signature; clone it once here (the hot
        // Wasm→Wasm path below avoids the allocation entirely).
        let ft = inst.module.func_type(func_idx).expect("validated").clone();
        let split = stack.len() - ft.params.len();
        let arg_slots: Vec<Slot> = stack.split_off(split);
        let args: Vec<Value> =
            ft.params.iter().zip(&arg_slots).map(|(t, s)| Value::from_slot(*s, *t)).collect();
        let results = inst.call_host(func_idx, &args)?;
        if results.len() != ft.results.len() {
            return Err(Trap::HostError(format!(
                "host function returned {} values, expected {}",
                results.len(),
                ft.results.len()
            )));
        }
        stack.extend(results.into_iter().map(Value::to_slot));
        Ok(())
    } else {
        if frames.len() >= inst.config.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        let n_params = inst.module.func_type(func_idx).expect("validated").params.len();
        let split = stack.len() - n_params;
        let args: Vec<Slot> = stack.split_off(split);
        let base = stack.len();
        let frame = make_frame(inst, func_idx, args, base)?;
        frames.push(frame);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instance::{ExecTier, Imports, Instance, InstanceConfig};
    use crate::types::{FuncType, ValType};

    fn lowered_instance(b: ModuleBuilder) -> Instance {
        Instance::instantiate(
            Arc::new(b.build()),
            Imports::new(),
            InstanceConfig { tier: ExecTier::Lowered, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn lowered_code_is_bigger_than_bytecode() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(Instruction::I32Eqz).br_if(1);
                    f.local_get(acc).local_get(0).op(Instruction::I32Add).local_set(acc);
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(acc);
        });
        b.export_func("sum_to", f);
        let module = b.build();
        let bytecode = module.code_size();
        let lf = lower_function(&module, 0).unwrap();
        assert!(
            lf.memory_bytes() >= 4 * bytecode,
            "lowered {} vs bytecode {bytecode}",
            lf.memory_bytes()
        );
    }

    #[test]
    fn loops_and_branches_execute() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(Instruction::I32Eqz).br_if(1);
                    f.local_get(acc).local_get(0).op(Instruction::I32Add).local_set(acc);
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(acc);
        });
        b.export_func("sum_to", f);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("sum_to", &[Value::I32(100)]).unwrap(), vec![Value::I32(5050)]);
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0);
            f.if_else(
                BlockType::Value(ValType::I32),
                |f| {
                    f.i32_const(10);
                },
                |f| {
                    f.i32_const(20);
                },
            );
        });
        b.export_func("pick", f);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("pick", &[Value::I32(1)]).unwrap(), vec![Value::I32(10)]);
        assert_eq!(inst.invoke("pick", &[Value::I32(0)]).unwrap(), vec![Value::I32(20)]);
    }

    #[test]
    fn dead_code_is_eliminated() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(1).return_();
            // Dead:
            f.i32_const(2).drop_();
        });
        let module = b.build();
        let lf = lower_function(&module, 0).unwrap();
        // Return + const only; dead const/drop not emitted.
        let consts = lf
            .instrs
            .iter()
            .filter(|i| matches!(i, LInstr::Simple(Instruction::I32Const(_))))
            .count();
        assert_eq!(consts, 1);
    }

    #[test]
    fn br_table_lowered() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.block(BlockType::Empty, |f| {
                    f.block(BlockType::Empty, |f| {
                        f.local_get(0).br_table(vec![0, 1], 1);
                    });
                    f.i32_const(7).br(1);
                });
                f.i32_const(8);
            });
        });
        b.export_func("t", f);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("t", &[Value::I32(0)]).unwrap(), vec![Value::I32(7)]);
        assert_eq!(inst.invoke("t", &[Value::I32(1)]).unwrap(), vec![Value::I32(8)]);
        assert_eq!(inst.invoke("t", &[Value::I32(99)]).unwrap(), vec![Value::I32(8)]);
    }

    #[test]
    fn nested_calls() {
        let mut b = ModuleBuilder::new();
        let sig = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
        let inc = b.func(sig.clone(), |f| {
            f.local_get(0).i32_const(1).op(Instruction::I32Add);
        });
        let twice = b.func(sig, |f| {
            f.local_get(0).call(inc).call(inc);
        });
        b.export_func("twice", twice);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("twice", &[Value::I32(40)]).unwrap(), vec![Value::I32(42)]);
    }
}
