//! The lowered execution tier (the Wasmtime/Wasmer/WasmEdge-profile tier),
//! rebuilt as a fast interpreter in the WAMR mold.
//!
//! Functions are compiled — eagerly at instantiation, shared per module —
//! into a pre-decoded, register-style IR:
//!
//! * **Pre-decoded operands.** The lowering pass simulates the Wasm operand
//!   stack and resolves every stack slot to a fixed frame-slot index, so the
//!   executor reads and writes a flat `Slot` array instead of pushing and
//!   popping a value stack. Stack position `i` lives at frame slot
//!   `locals + i` (its *canonical* slot); params and locals occupy the
//!   first `locals` slots.
//! * **Direct-threaded dispatch.** Every instruction is one fixed-width
//!   16-byte [`OpWord`] (opcode + three slot operands + a 64-bit
//!   immediate). Branch targets are pre-patched to instruction indices, so
//!   a taken branch is a single assignment to `pc`.
//! * **Superinstruction fusion.** The lowering pass fuses the dominant
//!   sequences in the workload corpus: `local.get` operands fold directly
//!   into consumer operand fields, `const+binop` becomes an immediate-form
//!   binop, `const+load/store` folds the address into the opcode,
//!   `compare+br_if` (and `compare+if`) becomes a fused compare-and-branch,
//!   and `op+local.set` retargets the producer's destination slot. Each
//!   fusion increments [`LoweredFunc::fused`] so the win is observable via
//!   `ExecStats::fused_ops`.
//!
//! The lowered code is still several times larger than the raw bytecode
//! (16 bytes per op versus 1–3 bytes), which is exactly the JIT/AOT
//! memory/startup trade-off the paper measures against WAMR's in-place
//! interpreter: [`LoweredFunc::memory_bytes`] is charged to
//! `stats.lowered_bytes` per instance.
//!
//! Frames overlap: a call's arguments are materialized at the callee's
//! frame base (`caller.base + argbase`), so calls copy nothing — the callee
//! reads its params where the caller wrote them, and returns its results to
//! the same place.

use std::sync::{Arc, OnceLock};

use crate::instance::Instance;
use crate::instr::{read_instr, BrTableData, Instruction};
use crate::module::Module;
use crate::numeric::{wasm_max_f32, wasm_max_f64, wasm_min_f32, wasm_min_f64};
use crate::types::BlockType;
use crate::values::{nearest_f32, nearest_f64, trunc, Slot, Trap, Value};

/// Opcode of one pre-decoded instruction word.
///
/// Operand conventions (slots are frame-relative `u16` indices):
/// * `a` — destination slot.
/// * `b` — first source slot (address slot for loads/stores).
/// * `c` — second source slot (value slot for stores).
/// * `imm` — 64-bit immediate: constant bits, memory offset, global index,
///   function/type index, branch target (low 32 bits), or br_table index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Op {
    /// `a ← b`.
    Copy,
    /// `a ← imm` (raw slot bits).
    Const,
    /// `a ← r[imm] != 0 ? b : c`.
    Select,
    GlobalGet,
    GlobalSet,
    MemorySize,
    MemoryGrow,
    Unreachable,

    // Loads: `a ← mem[r[b] + imm]`.
    I32Load,
    I64Load,
    F32Load,
    F64Load,
    I32Load8S,
    I32Load8U,
    I32Load16S,
    I32Load16U,
    I64Load8S,
    I64Load8U,
    I64Load16S,
    I64Load16U,
    I64Load32S,
    I64Load32U,
    // Fused constant-address loads: `a ← mem[imm]`.
    I32LoadAt,
    I64LoadAt,
    F32LoadAt,
    F64LoadAt,

    // Stores: `mem[r[b] + imm] ← r[c]`.
    I32Store,
    I64Store,
    F32Store,
    F64Store,
    I32Store8,
    I32Store16,
    I64Store8,
    I64Store16,
    I64Store32,
    // Fused constant-address stores: `mem[imm] ← r[c]`.
    I32StoreAt,
    I64StoreAt,
    F32StoreAt,
    F64StoreAt,

    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    // Fused const-operand forms: rhs in `imm` (raw slot bits).
    I32AddImm,
    I32SubImm,
    I32MulImm,
    I32AndImm,
    I32OrImm,
    I32XorImm,
    I32ShlImm,
    I32ShrSImm,
    I32ShrUImm,

    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,

    /// Unconditional jump to `imm`.
    Br,
    /// Copy `c` slots from `b` to `a`, then jump to `imm` (branch with
    /// kept values that are not already in place).
    BrShuffle,
    /// Jump to `imm` when `r[b] == 0` (`if` entry, fused `eqz+br_if`).
    BrIfz,
    /// Jump to `imm` when `r[b] != 0`.
    BrIf,
    /// When `r[b] != 0`: copy `c` slots from `imm>>32` to `a`, jump to
    /// `imm & 0xffff_ffff`.
    BrIfShuffle,
    // Fused compare-and-branch: jump to `imm` when `r[b] <op> r[c]`.
    BrI32Eq,
    BrI32Ne,
    BrI32LtS,
    BrI32LtU,
    BrI32GtS,
    BrI32GtU,
    BrI32LeS,
    BrI32LeU,
    BrI32GeS,
    BrI32GeU,
    /// Select arm `r[b]` of side table `imm`, shuffle, jump.
    BrTable,
    /// Copy `result_count` slots from `b` to the frame base and pop the
    /// frame.
    Ret,
    /// Call function `imm`; `a` is the frame-relative argument base (the
    /// callee's frame base).
    Call,
    /// Call through the table: selector in `r[b]`, expected type `imm`,
    /// argument base `a`.
    CallIndirect,
}

/// One pre-decoded instruction word: 16 bytes, fixed width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWord {
    pub code: Op,
    pub a: u16,
    pub b: u16,
    pub c: u16,
    pub imm: u64,
}

/// Branch targets live in the low 32 bits of `imm`; `BrIfShuffle` keeps its
/// source slot in the high bits.
const TARGET_MASK: u64 = 0xffff_ffff;

/// One resolved `br_table` arm: jump target plus the slot shuffle that
/// moves the kept values into the target block's canonical slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LBranch {
    pub target: u32,
    pub dst: u16,
    pub src: u16,
    pub arity: u16,
}

/// Side table of a lowered `br_table` (arms are too wide for an `OpWord`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LBrTable {
    pub arms: Vec<LBranch>,
    pub default: LBranch,
}

/// A function compiled to the pre-decoded register representation.
#[derive(Debug)]
pub struct LoweredFunc {
    pub ops: Vec<OpWord>,
    pub tables: Vec<LBrTable>,
    pub param_count: u16,
    /// Non-param locals (zeroed on entry).
    pub local_count: u16,
    pub result_count: u16,
    /// Total frame slots: params + locals + operand high-water mark.
    pub frame_size: u16,
    /// Superinstruction-fusion events during lowering (folded operands,
    /// immediate binops, fused compare-branches, retargeted `local.set`s…).
    pub fused: u32,
    /// Bytecode instructions decoded — compare against `ops.len()` for the
    /// fusion ratio.
    pub source_instrs: u32,
}

impl LoweredFunc {
    /// Resident bytes of the compiled representation — what the JIT/AOT
    /// engine profiles charge as "machine code" via `stats.lowered_bytes`.
    pub fn memory_bytes(&self) -> u64 {
        let base = self.ops.len() * std::mem::size_of::<OpWord>();
        let tables: usize = self
            .tables
            .iter()
            .map(|t| {
                std::mem::size_of::<LBrTable>() + t.arms.len() * std::mem::size_of::<LBranch>()
            })
            .sum();
        (base + tables) as u64
    }
}

/// Per-module shared store of compiled functions. Instances of the same
/// module share one compilation (first compiler wins a race); per-instance
/// `stats.lowered_bytes` still charges the full footprint to every
/// instance, matching how a real runtime maps the code into each sandbox.
///
/// The store is deliberately excluded from `Module`'s `Clone`/`PartialEq`:
/// it is a cache, not module identity.
#[derive(Default)]
pub(crate) struct CompiledCode {
    funcs: OnceLock<Box<[OnceLock<Arc<LoweredFunc>>]>>,
}

impl Clone for CompiledCode {
    fn clone(&self) -> Self {
        CompiledCode::default()
    }
}

impl PartialEq for CompiledCode {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for CompiledCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.funcs.get().map_or(0, |s| s.iter().filter(|c| c.get().is_some()).count());
        write!(f, "CompiledCode({n} compiled)")
    }
}

/// Fetch (or compile and publish) the shared lowered code for `func_idx`.
pub(crate) fn shared_lowered(module: &Module, func_idx: u32) -> Result<Arc<LoweredFunc>, Trap> {
    let n = module.funcs.len();
    let store = module.compiled.funcs.get_or_init(|| (0..n).map(|_| OnceLock::new()).collect());
    let local_idx = (func_idx - module.num_imported_funcs()) as usize;
    let cell = &store[local_idx];
    if let Some(f) = cell.get() {
        return Ok(Arc::clone(f));
    }
    let lf = lower_function(module, func_idx).map_err(Trap::HostError)?;
    Ok(Arc::clone(cell.get_or_init(|| Arc::new(lf))))
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// "No producer" sentinel for a virtual-stack entry.
const NONE: u32 = u32::MAX;

/// Where a virtual-stack value currently lives. `Local` and `Const` entries
/// are lazy: no op has been emitted yet, so a consumer can fold them into
/// its own operand fields (the core fusion mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Materialized in its canonical frame slot.
    Reg,
    /// Alias of local `k` (a pending `local.get`).
    Local(u16),
    /// A pending constant (raw slot bits).
    Const(u64),
}

#[derive(Debug, Clone, Copy)]
struct VEntry {
    origin: Origin,
    /// Index of the op whose destination is this entry's canonical slot,
    /// or `NONE`. Used to retarget `op+local.set` pairs.
    producer: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtlKind {
    Func,
    Block,
    Loop,
    If,
}

/// A forward-branch patch site: an op's target immediate, or one slot of a
/// `br_table` side table.
#[derive(Debug, Clone, Copy)]
enum Fixup {
    Op(usize),
    TableArm(usize, usize),
    TableDefault(usize),
}

struct Ctl {
    kind: CtlKind,
    /// Virtual-stack height under this construct's params.
    height: usize,
    params: u16,
    results: u16,
    /// Loop head (op index) for backward branches.
    head: u32,
    /// Sites patched to this construct's end.
    fixups: Vec<Fixup>,
    /// The conditional branch at an `if` opening (patched to the else arm
    /// or the end).
    else_fixup: Option<usize>,
    /// Whether the code *entering* this construct was reachable.
    entry_live: bool,
}

/// Branch resolution: arity, destination shuffle slot, and the target when
/// it is already known (loops).
struct BranchInfo {
    li: usize,
    arity: u16,
    dst: u16,
    target: Option<u32>,
}

struct Lowerer<'m> {
    module: &'m Module,
    ops: Vec<OpWord>,
    tables: Vec<LBrTable>,
    vstack: Vec<VEntry>,
    ctls: Vec<Ctl>,
    /// Params + declared locals; canonical slot of stack position `i` is
    /// `nlocals + i`.
    nlocals: u16,
    result_count: u16,
    max_height: usize,
    live: bool,
    fused: u32,
    source_instrs: u32,
}

impl<'m> Lowerer<'m> {
    /// Canonical frame slot of virtual-stack position `pos`. Wrapping: the
    /// final frame-size check rejects any function that actually overflows.
    fn canon(&self, pos: usize) -> u16 {
        (self.nlocals as u32).wrapping_add(pos as u32) as u16
    }

    fn push(&mut self, origin: Origin) {
        self.vstack.push(VEntry { origin, producer: NONE });
        if self.vstack.len() > self.max_height {
            self.max_height = self.vstack.len();
        }
    }

    /// Push a value produced by the op just emitted.
    fn push_reg(&mut self) {
        let producer = (self.ops.len() - 1) as u32;
        self.vstack.push(VEntry { origin: Origin::Reg, producer });
        if self.vstack.len() > self.max_height {
            self.max_height = self.vstack.len();
        }
    }

    fn emit(&mut self, code: Op, a: u16, b: u16, c: u16, imm: u64) -> usize {
        self.ops.push(OpWord { code, a, b, c, imm });
        self.ops.len() - 1
    }

    /// Force the value at `pos` into its canonical slot.
    fn materialize(&mut self, pos: usize) {
        let dst = self.canon(pos);
        match self.vstack[pos].origin {
            Origin::Reg => return,
            Origin::Local(k) => {
                self.emit(Op::Copy, dst, k, 0, 0);
            }
            Origin::Const(bits) => {
                self.emit(Op::Const, dst, 0, 0, bits);
            }
        }
        self.vstack[pos] = VEntry { origin: Origin::Reg, producer: (self.ops.len() - 1) as u32 };
    }

    fn materialize_top(&mut self, n: usize) {
        let start = self.vstack.len().saturating_sub(n);
        for i in start..self.vstack.len() {
            self.materialize(i);
        }
    }

    /// Resolve the value at `pos` to a readable slot: locals fold in place
    /// (fusion), constants are materialized.
    fn operand_slot(&mut self, pos: usize) -> u16 {
        match self.vstack[pos].origin {
            Origin::Local(k) => {
                self.fused += 1;
                k
            }
            Origin::Reg => self.canon(pos),
            Origin::Const(_) => {
                self.materialize(pos);
                self.canon(pos)
            }
        }
    }

    /// Reset the virtual stack to `height` plus `n` opaque block results.
    /// Dead paths may have left it short; pad with opaque entries so
    /// lowering of any following (possibly dead-then-live) code never
    /// underflows.
    fn reset_stack(&mut self, height: usize, n: u16) {
        self.vstack.truncate(height);
        while self.vstack.len() < height {
            self.vstack.push(VEntry { origin: Origin::Reg, producer: NONE });
        }
        for _ in 0..n {
            self.push(Origin::Reg);
        }
    }

    fn block_arity(&self, bt: BlockType) -> (u16, u16) {
        match bt {
            BlockType::Empty => (0, 0),
            BlockType::Value(_) => (0, 1),
            BlockType::Func(idx) => {
                let ft = &self.module.types[idx as usize];
                (ft.params.len() as u16, ft.results.len() as u16)
            }
        }
    }

    fn binop(&mut self, code: Op, imm_code: Option<Op>) {
        let y = self.vstack.len() - 1;
        let x = y - 1;
        if let Some(ic) = imm_code {
            if let Origin::Const(bits) = self.vstack[y].origin {
                let b = self.operand_slot(x);
                let dst = self.canon(x);
                self.vstack.truncate(x);
                self.emit(ic, dst, b, 0, bits);
                self.fused += 1;
                self.push_reg();
                return;
            }
        }
        let c = self.operand_slot(y);
        let b = self.operand_slot(x);
        let dst = self.canon(x);
        self.vstack.truncate(x);
        self.emit(code, dst, b, c, 0);
        self.push_reg();
    }

    fn unop(&mut self, code: Op) {
        let x = self.vstack.len() - 1;
        let b = self.operand_slot(x);
        let dst = self.canon(x);
        self.vstack.truncate(x);
        self.emit(code, dst, b, 0, 0);
        self.push_reg();
    }

    /// Zero-operand producer (`global.get`, `memory.size`).
    fn produce(&mut self, code: Op, imm: u64) {
        let dst = self.canon(self.vstack.len());
        self.emit(code, dst, 0, 0, imm);
        self.push_reg();
    }

    /// One-operand consumer (`global.set`).
    fn consume(&mut self, code: Op, imm: u64) {
        let x = self.vstack.len() - 1;
        let b = self.operand_slot(x);
        self.vstack.truncate(x);
        self.emit(code, 0, b, 0, imm);
    }

    fn load(&mut self, code: Op, at: Option<Op>, offset: u32) {
        let x = self.vstack.len() - 1;
        if let Some(atc) = at {
            if let Origin::Const(bits) = self.vstack[x].origin {
                let ea = Slot(bits).u32() as u64 + offset as u64;
                if ea <= u32::MAX as u64 {
                    let dst = self.canon(x);
                    self.vstack.truncate(x);
                    self.emit(atc, dst, 0, 0, ea);
                    self.fused += 1;
                    self.push_reg();
                    return;
                }
            }
        }
        let b = self.operand_slot(x);
        let dst = self.canon(x);
        self.vstack.truncate(x);
        self.emit(code, dst, b, 0, offset as u64);
        self.push_reg();
    }

    fn store(&mut self, code: Op, at: Option<Op>, offset: u32) {
        let v = self.vstack.len() - 1;
        let a = v - 1;
        let c = self.operand_slot(v);
        if let Some(atc) = at {
            if let Origin::Const(bits) = self.vstack[a].origin {
                let ea = Slot(bits).u32() as u64 + offset as u64;
                if ea <= u32::MAX as u64 {
                    self.vstack.truncate(a);
                    self.emit(atc, 0, 0, c, ea);
                    self.fused += 1;
                    return;
                }
            }
        }
        let b = self.operand_slot(a);
        self.vstack.truncate(a);
        self.emit(code, 0, b, c, offset as u64);
    }

    fn local_set(&mut self, k: u16) {
        let pos = self.vstack.len() - 1;
        // Pending aliases of local `k` below the top must be materialized
        // before `k` is overwritten (they read the *old* value). Doing so
        // emits ops, which also disables the retarget fast path below.
        for i in 0..pos {
            if self.vstack[i].origin == Origin::Local(k) {
                self.materialize(i);
            }
        }
        let e = self.vstack[pos];
        match e.origin {
            Origin::Reg => {
                if e.producer != NONE && e.producer as usize == self.ops.len() - 1 {
                    // `op + local.set` → write the local directly.
                    self.ops[e.producer as usize].a = k;
                    self.fused += 1;
                } else {
                    let src = self.canon(pos);
                    self.emit(Op::Copy, k, src, 0, 0);
                }
            }
            Origin::Local(j) => {
                if j != k {
                    self.emit(Op::Copy, k, j, 0, 0);
                }
                self.fused += 1;
            }
            Origin::Const(bits) => {
                self.emit(Op::Const, k, 0, 0, bits);
                self.fused += 1;
            }
        }
        self.vstack.truncate(pos);
    }

    fn select(&mut self) {
        let cpos = self.vstack.len() - 1;
        let v2 = cpos - 1;
        let v1 = v2 - 1;
        if let Origin::Const(bits) = self.vstack[cpos].origin {
            // Statically decided select: keep one side, no op at all
            // unless the kept value needs to move.
            self.fused += 1;
            self.vstack.truncate(cpos);
            if Slot(bits).i32() != 0 {
                self.vstack.truncate(v2);
            } else {
                let e2 = self.vstack[v2];
                match e2.origin {
                    Origin::Reg => {
                        let src = self.canon(v2);
                        let dst = self.canon(v1);
                        self.vstack.truncate(v1);
                        self.emit(Op::Copy, dst, src, 0, 0);
                        self.push_reg();
                    }
                    origin => {
                        self.vstack.truncate(v1);
                        self.vstack.push(VEntry { origin, producer: NONE });
                    }
                }
            }
            return;
        }
        let cond = self.operand_slot(cpos);
        let c = self.operand_slot(v2);
        let b = self.operand_slot(v1);
        let dst = self.canon(v1);
        self.vstack.truncate(v1);
        self.emit(Op::Select, dst, b, c, cond as u64);
        self.push_reg();
    }

    fn branch_info(&self, depth: u32) -> BranchInfo {
        let li = self.ctls.len() - 1 - depth as usize;
        let ctl = &self.ctls[li];
        let dst = self.canon(ctl.height);
        if ctl.kind == CtlKind::Loop {
            BranchInfo { li, arity: ctl.params, dst, target: Some(ctl.head) }
        } else {
            BranchInfo { li, arity: ctl.results, dst, target: None }
        }
    }

    /// If the top of stack is the result of an i32 compare emitted as the
    /// immediately preceding op, return the fused branch opcode (inverted
    /// for `if`-entry "jump when false") plus its operand slots.
    fn try_fuse_cmp(&self, pos: usize, invert: bool) -> Option<(Op, u16, u16)> {
        let e = self.vstack[pos];
        if e.origin != Origin::Reg || e.producer == NONE {
            return None;
        }
        let p = e.producer as usize;
        if p != self.ops.len() - 1 {
            return None;
        }
        let w = self.ops[p];
        let code = match (w.code, invert) {
            (Op::I32Eqz, false) => Op::BrIfz,
            (Op::I32Eqz, true) => Op::BrIf,
            (Op::I32Eq, false) | (Op::I32Ne, true) => Op::BrI32Eq,
            (Op::I32Ne, false) | (Op::I32Eq, true) => Op::BrI32Ne,
            (Op::I32LtS, false) | (Op::I32GeS, true) => Op::BrI32LtS,
            (Op::I32LtU, false) | (Op::I32GeU, true) => Op::BrI32LtU,
            (Op::I32GtS, false) | (Op::I32LeS, true) => Op::BrI32GtS,
            (Op::I32GtU, false) | (Op::I32LeU, true) => Op::BrI32GtU,
            (Op::I32LeS, false) | (Op::I32GtS, true) => Op::BrI32LeS,
            (Op::I32LeU, false) | (Op::I32GtU, true) => Op::BrI32LeU,
            (Op::I32GeS, false) | (Op::I32LtS, true) => Op::BrI32GeS,
            (Op::I32GeU, false) | (Op::I32LtU, true) => Op::BrI32GeU,
            _ => return None,
        };
        Some((code, w.b, w.c))
    }

    fn patch(&mut self, fx: Fixup, target: u32) {
        match fx {
            Fixup::Op(i) => {
                let w = &mut self.ops[i];
                w.imm = (w.imm & !TARGET_MASK) | target as u64;
            }
            Fixup::TableArm(t, i) => self.tables[t].arms[i].target = target,
            Fixup::TableDefault(t) => self.tables[t].default.target = target,
        }
    }

    fn br(&mut self, depth: u32) {
        let info = self.branch_info(depth);
        let arity = info.arity as usize;
        self.materialize_top(arity);
        let src = self.canon(self.vstack.len().saturating_sub(arity));
        let target = info.target.unwrap_or(u32::MAX) as u64;
        let idx = if arity == 0 || src == info.dst {
            self.emit(Op::Br, 0, 0, 0, target)
        } else {
            self.emit(Op::BrShuffle, info.dst, src, info.arity, target)
        };
        if info.target.is_none() {
            self.ctls[info.li].fixups.push(Fixup::Op(idx));
        }
        self.live = false;
    }

    fn br_if(&mut self, depth: u32) {
        let cpos = self.vstack.len() - 1;
        let info = self.branch_info(depth);
        let arity = info.arity as usize;
        // Kept values must sit in canonical slots whether or not the
        // branch is taken, so materialize them before it.
        for i in cpos.saturating_sub(arity)..cpos {
            self.materialize(i);
        }
        let target = info.target.unwrap_or(u32::MAX) as u64;
        let idx;
        if arity == 0 {
            if let Some((code, b, c)) = self.try_fuse_cmp(cpos, false) {
                self.ops.pop();
                self.vstack.truncate(cpos);
                idx = self.emit(code, 0, b, c, target);
                self.fused += 1;
            } else {
                let cond = self.operand_slot(cpos);
                self.vstack.truncate(cpos);
                idx = self.emit(Op::BrIf, 0, cond, 0, target);
            }
        } else {
            let cond = self.operand_slot(cpos);
            let src = self.canon(cpos.saturating_sub(arity));
            if src == info.dst {
                idx = self.emit(Op::BrIf, 0, cond, 0, target);
            } else {
                let imm = target | ((src as u64) << 32);
                idx = self.emit(Op::BrIfShuffle, info.dst, cond, info.arity, imm);
            }
            self.vstack.truncate(cpos);
        }
        if info.target.is_none() {
            self.ctls[info.li].fixups.push(Fixup::Op(idx));
        }
    }

    fn br_table(&mut self, data: &BrTableData) {
        let spos = self.vstack.len() - 1;
        let sel = self.operand_slot(spos);
        let dinfo = self.branch_info(data.default);
        let arity = dinfo.arity as usize;
        for i in spos.saturating_sub(arity)..spos {
            self.materialize(i);
        }
        let src = self.canon(spos.saturating_sub(arity));
        let table_idx = self.tables.len();
        let mut arms = Vec::with_capacity(data.targets.len());
        for (i, &d) in data.targets.iter().enumerate() {
            let info = self.branch_info(d);
            let target = match info.target {
                Some(t) => t,
                None => {
                    self.ctls[info.li].fixups.push(Fixup::TableArm(table_idx, i));
                    u32::MAX
                }
            };
            arms.push(LBranch { target, dst: info.dst, src, arity: info.arity });
        }
        let dtarget = match dinfo.target {
            Some(t) => t,
            None => {
                self.ctls[dinfo.li].fixups.push(Fixup::TableDefault(table_idx));
                u32::MAX
            }
        };
        self.tables.push(LBrTable {
            arms,
            default: LBranch { target: dtarget, dst: dinfo.dst, src, arity: dinfo.arity },
        });
        self.vstack.truncate(spos.saturating_sub(arity));
        self.emit(Op::BrTable, 0, sel, 0, table_idx as u64);
        self.live = false;
    }

    fn ret(&mut self) {
        let r = self.result_count as usize;
        self.materialize_top(r);
        let src = if r > 0 { self.canon(self.vstack.len().saturating_sub(r)) } else { 0 };
        self.emit(Op::Ret, 0, src, 0, 0);
        self.live = false;
    }

    fn call(&mut self, f: u32) -> Result<(), String> {
        let module = self.module;
        let ft = module.func_type(f).ok_or("bad call target")?;
        let (n, r) = (ft.params.len(), ft.results.len());
        self.materialize_top(n);
        let base = self.vstack.len().saturating_sub(n);
        let argbase = self.canon(base);
        self.vstack.truncate(base);
        self.emit(Op::Call, argbase, 0, 0, f as u64);
        for _ in 0..r {
            self.push(Origin::Reg);
        }
        Ok(())
    }

    fn call_indirect(&mut self, type_idx: u32) -> Result<(), String> {
        let spos = self.vstack.len() - 1;
        let sel = self.operand_slot(spos);
        let module = self.module;
        let ft = module.types.get(type_idx as usize).ok_or("bad type index")?;
        let (n, r) = (ft.params.len(), ft.results.len());
        for i in spos.saturating_sub(n)..spos {
            self.materialize(i);
        }
        let base = spos.saturating_sub(n);
        let argbase = self.canon(base);
        self.vstack.truncate(base);
        self.emit(Op::CallIndirect, argbase, sel, 0, type_idx as u64);
        for _ in 0..r {
            self.push(Origin::Reg);
        }
        Ok(())
    }

    fn step(&mut self, instr: Instruction) -> Result<(), String> {
        use Instruction as I;
        match instr {
            I::Block(bt) => {
                let (params, results) = self.block_arity(bt);
                let height = self.vstack.len().saturating_sub(params as usize);
                self.ctls.push(Ctl {
                    kind: CtlKind::Block,
                    height,
                    params,
                    results,
                    head: 0,
                    fixups: Vec::new(),
                    else_fixup: None,
                    entry_live: self.live,
                });
            }
            I::Loop(bt) => {
                let (params, results) = self.block_arity(bt);
                // Back-branches expect loop params in canonical slots, so
                // pin them down before recording the head.
                if self.live {
                    self.materialize_top(params as usize);
                }
                let height = self.vstack.len().saturating_sub(params as usize);
                self.ctls.push(Ctl {
                    kind: CtlKind::Loop,
                    height,
                    params,
                    results,
                    head: self.ops.len() as u32,
                    fixups: Vec::new(),
                    else_fixup: None,
                    entry_live: self.live,
                });
            }
            I::If(bt) => {
                let (params, results) = self.block_arity(bt);
                let mut else_fixup = None;
                if self.live {
                    let cpos = self.vstack.len() - 1;
                    // Params must be canonical on both arms; materializing
                    // them first also disables compare fusion when it
                    // would be unsound (ops emitted after the compare).
                    for i in cpos.saturating_sub(params as usize)..cpos {
                        self.materialize(i);
                    }
                    if let Some((code, b, c)) = self.try_fuse_cmp(cpos, true) {
                        self.ops.pop();
                        self.vstack.truncate(cpos);
                        else_fixup = Some(self.emit(code, 0, b, c, u32::MAX as u64));
                        self.fused += 1;
                    } else {
                        let cond = self.operand_slot(cpos);
                        self.vstack.truncate(cpos);
                        else_fixup = Some(self.emit(Op::BrIfz, 0, cond, 0, u32::MAX as u64));
                    }
                }
                let height = self.vstack.len().saturating_sub(params as usize);
                self.ctls.push(Ctl {
                    kind: CtlKind::If,
                    height,
                    params,
                    results,
                    head: 0,
                    fixups: Vec::new(),
                    else_fixup,
                    entry_live: self.live,
                });
            }
            I::Else => {
                let li = self.ctls.len().checked_sub(1).ok_or("else outside if")?;
                if self.live {
                    let results = self.ctls[li].results;
                    self.materialize_top(results as usize);
                    let idx = self.emit(Op::Br, 0, 0, 0, u32::MAX as u64);
                    self.ctls[li].fixups.push(Fixup::Op(idx));
                }
                if let Some(fx) = self.ctls[li].else_fixup.take() {
                    let target = self.ops.len() as u32;
                    self.patch(Fixup::Op(fx), target);
                }
                let (height, params, entry_live) = {
                    let c = &self.ctls[li];
                    (c.height, c.params, c.entry_live)
                };
                self.live = entry_live;
                self.reset_stack(height, params);
            }
            I::End => {
                let ctl = self.ctls.pop().ok_or("unbalanced end")?;
                // Fall-through materialization runs *before* the end
                // target: branches arrive with values already shuffled
                // into the same canonical slots.
                if self.live {
                    self.materialize_top(ctl.results as usize);
                }
                let end_target = self.ops.len() as u32;
                if let Some(fx) = ctl.else_fixup {
                    self.patch(Fixup::Op(fx), end_target);
                }
                for fx in ctl.fixups {
                    self.patch(fx, end_target);
                }
                self.live = ctl.entry_live;
                self.reset_stack(ctl.height, ctl.results);
                if ctl.kind == CtlKind::Func {
                    let src = if self.result_count > 0 { self.canon(ctl.height) } else { 0 };
                    self.emit(Op::Ret, 0, src, 0, 0);
                }
            }
            I::Br(d) => {
                if self.live {
                    self.br(d);
                }
            }
            I::BrIf(d) => {
                if self.live {
                    self.br_if(d);
                }
            }
            I::BrTable(ref data) => {
                if self.live {
                    self.br_table(data);
                }
            }
            I::Return => {
                if self.live {
                    self.ret();
                }
            }
            I::Unreachable => {
                if self.live {
                    self.emit(Op::Unreachable, 0, 0, 0, 0);
                    self.live = false;
                }
            }
            I::Call(f) => {
                if self.live {
                    self.call(f)?;
                }
            }
            I::CallIndirect { type_idx, .. } => {
                if self.live {
                    self.call_indirect(type_idx)?;
                }
            }
            other => {
                if self.live {
                    self.simple(&other);
                }
            }
        }
        Ok(())
    }

    fn simple(&mut self, i: &Instruction) {
        use Instruction as I;
        match i {
            I::Nop => {}
            I::Drop => {
                self.vstack.pop();
            }
            I::Select => self.select(),
            I::LocalGet(k) => self.push(Origin::Local(*k as u16)),
            I::LocalSet(k) => self.local_set(*k as u16),
            I::LocalTee(k) => {
                self.local_set(*k as u16);
                self.push(Origin::Local(*k as u16));
            }
            I::GlobalGet(g) => self.produce(Op::GlobalGet, *g as u64),
            I::GlobalSet(g) => self.consume(Op::GlobalSet, *g as u64),
            I::MemorySize => self.produce(Op::MemorySize, 0),
            I::MemoryGrow => self.unop(Op::MemoryGrow),

            I::I32Const(v) => self.push(Origin::Const(Slot::from_i32(*v).0)),
            I::I64Const(v) => self.push(Origin::Const(Slot::from_i64(*v).0)),
            I::F32Const(v) => self.push(Origin::Const(Slot::from_f32(*v).0)),
            I::F64Const(v) => self.push(Origin::Const(Slot::from_f64(*v).0)),

            I::I32Load(m) => self.load(Op::I32Load, Some(Op::I32LoadAt), m.offset),
            I::I64Load(m) => self.load(Op::I64Load, Some(Op::I64LoadAt), m.offset),
            I::F32Load(m) => self.load(Op::F32Load, Some(Op::F32LoadAt), m.offset),
            I::F64Load(m) => self.load(Op::F64Load, Some(Op::F64LoadAt), m.offset),
            I::I32Load8S(m) => self.load(Op::I32Load8S, None, m.offset),
            I::I32Load8U(m) => self.load(Op::I32Load8U, None, m.offset),
            I::I32Load16S(m) => self.load(Op::I32Load16S, None, m.offset),
            I::I32Load16U(m) => self.load(Op::I32Load16U, None, m.offset),
            I::I64Load8S(m) => self.load(Op::I64Load8S, None, m.offset),
            I::I64Load8U(m) => self.load(Op::I64Load8U, None, m.offset),
            I::I64Load16S(m) => self.load(Op::I64Load16S, None, m.offset),
            I::I64Load16U(m) => self.load(Op::I64Load16U, None, m.offset),
            I::I64Load32S(m) => self.load(Op::I64Load32S, None, m.offset),
            I::I64Load32U(m) => self.load(Op::I64Load32U, None, m.offset),
            I::I32Store(m) => self.store(Op::I32Store, Some(Op::I32StoreAt), m.offset),
            I::I64Store(m) => self.store(Op::I64Store, Some(Op::I64StoreAt), m.offset),
            I::F32Store(m) => self.store(Op::F32Store, Some(Op::F32StoreAt), m.offset),
            I::F64Store(m) => self.store(Op::F64Store, Some(Op::F64StoreAt), m.offset),
            I::I32Store8(m) => self.store(Op::I32Store8, None, m.offset),
            I::I32Store16(m) => self.store(Op::I32Store16, None, m.offset),
            I::I64Store8(m) => self.store(Op::I64Store8, None, m.offset),
            I::I64Store16(m) => self.store(Op::I64Store16, None, m.offset),
            I::I64Store32(m) => self.store(Op::I64Store32, None, m.offset),

            I::I32Eqz => self.unop(Op::I32Eqz),
            I::I32Eq => self.binop(Op::I32Eq, None),
            I::I32Ne => self.binop(Op::I32Ne, None),
            I::I32LtS => self.binop(Op::I32LtS, None),
            I::I32LtU => self.binop(Op::I32LtU, None),
            I::I32GtS => self.binop(Op::I32GtS, None),
            I::I32GtU => self.binop(Op::I32GtU, None),
            I::I32LeS => self.binop(Op::I32LeS, None),
            I::I32LeU => self.binop(Op::I32LeU, None),
            I::I32GeS => self.binop(Op::I32GeS, None),
            I::I32GeU => self.binop(Op::I32GeU, None),
            I::I64Eqz => self.unop(Op::I64Eqz),
            I::I64Eq => self.binop(Op::I64Eq, None),
            I::I64Ne => self.binop(Op::I64Ne, None),
            I::I64LtS => self.binop(Op::I64LtS, None),
            I::I64LtU => self.binop(Op::I64LtU, None),
            I::I64GtS => self.binop(Op::I64GtS, None),
            I::I64GtU => self.binop(Op::I64GtU, None),
            I::I64LeS => self.binop(Op::I64LeS, None),
            I::I64LeU => self.binop(Op::I64LeU, None),
            I::I64GeS => self.binop(Op::I64GeS, None),
            I::I64GeU => self.binop(Op::I64GeU, None),
            I::F32Eq => self.binop(Op::F32Eq, None),
            I::F32Ne => self.binop(Op::F32Ne, None),
            I::F32Lt => self.binop(Op::F32Lt, None),
            I::F32Gt => self.binop(Op::F32Gt, None),
            I::F32Le => self.binop(Op::F32Le, None),
            I::F32Ge => self.binop(Op::F32Ge, None),
            I::F64Eq => self.binop(Op::F64Eq, None),
            I::F64Ne => self.binop(Op::F64Ne, None),
            I::F64Lt => self.binop(Op::F64Lt, None),
            I::F64Gt => self.binop(Op::F64Gt, None),
            I::F64Le => self.binop(Op::F64Le, None),
            I::F64Ge => self.binop(Op::F64Ge, None),

            I::I32Clz => self.unop(Op::I32Clz),
            I::I32Ctz => self.unop(Op::I32Ctz),
            I::I32Popcnt => self.unop(Op::I32Popcnt),
            I::I32Add => self.binop(Op::I32Add, Some(Op::I32AddImm)),
            I::I32Sub => self.binop(Op::I32Sub, Some(Op::I32SubImm)),
            I::I32Mul => self.binop(Op::I32Mul, Some(Op::I32MulImm)),
            I::I32DivS => self.binop(Op::I32DivS, None),
            I::I32DivU => self.binop(Op::I32DivU, None),
            I::I32RemS => self.binop(Op::I32RemS, None),
            I::I32RemU => self.binop(Op::I32RemU, None),
            I::I32And => self.binop(Op::I32And, Some(Op::I32AndImm)),
            I::I32Or => self.binop(Op::I32Or, Some(Op::I32OrImm)),
            I::I32Xor => self.binop(Op::I32Xor, Some(Op::I32XorImm)),
            I::I32Shl => self.binop(Op::I32Shl, Some(Op::I32ShlImm)),
            I::I32ShrS => self.binop(Op::I32ShrS, Some(Op::I32ShrSImm)),
            I::I32ShrU => self.binop(Op::I32ShrU, Some(Op::I32ShrUImm)),
            I::I32Rotl => self.binop(Op::I32Rotl, None),
            I::I32Rotr => self.binop(Op::I32Rotr, None),
            I::I64Clz => self.unop(Op::I64Clz),
            I::I64Ctz => self.unop(Op::I64Ctz),
            I::I64Popcnt => self.unop(Op::I64Popcnt),
            I::I64Add => self.binop(Op::I64Add, None),
            I::I64Sub => self.binop(Op::I64Sub, None),
            I::I64Mul => self.binop(Op::I64Mul, None),
            I::I64DivS => self.binop(Op::I64DivS, None),
            I::I64DivU => self.binop(Op::I64DivU, None),
            I::I64RemS => self.binop(Op::I64RemS, None),
            I::I64RemU => self.binop(Op::I64RemU, None),
            I::I64And => self.binop(Op::I64And, None),
            I::I64Or => self.binop(Op::I64Or, None),
            I::I64Xor => self.binop(Op::I64Xor, None),
            I::I64Shl => self.binop(Op::I64Shl, None),
            I::I64ShrS => self.binop(Op::I64ShrS, None),
            I::I64ShrU => self.binop(Op::I64ShrU, None),
            I::I64Rotl => self.binop(Op::I64Rotl, None),
            I::I64Rotr => self.binop(Op::I64Rotr, None),

            I::F32Abs => self.unop(Op::F32Abs),
            I::F32Neg => self.unop(Op::F32Neg),
            I::F32Ceil => self.unop(Op::F32Ceil),
            I::F32Floor => self.unop(Op::F32Floor),
            I::F32Trunc => self.unop(Op::F32Trunc),
            I::F32Nearest => self.unop(Op::F32Nearest),
            I::F32Sqrt => self.unop(Op::F32Sqrt),
            I::F32Add => self.binop(Op::F32Add, None),
            I::F32Sub => self.binop(Op::F32Sub, None),
            I::F32Mul => self.binop(Op::F32Mul, None),
            I::F32Div => self.binop(Op::F32Div, None),
            I::F32Min => self.binop(Op::F32Min, None),
            I::F32Max => self.binop(Op::F32Max, None),
            I::F32Copysign => self.binop(Op::F32Copysign, None),
            I::F64Abs => self.unop(Op::F64Abs),
            I::F64Neg => self.unop(Op::F64Neg),
            I::F64Ceil => self.unop(Op::F64Ceil),
            I::F64Floor => self.unop(Op::F64Floor),
            I::F64Trunc => self.unop(Op::F64Trunc),
            I::F64Nearest => self.unop(Op::F64Nearest),
            I::F64Sqrt => self.unop(Op::F64Sqrt),
            I::F64Add => self.binop(Op::F64Add, None),
            I::F64Sub => self.binop(Op::F64Sub, None),
            I::F64Mul => self.binop(Op::F64Mul, None),
            I::F64Div => self.binop(Op::F64Div, None),
            I::F64Min => self.binop(Op::F64Min, None),
            I::F64Max => self.binop(Op::F64Max, None),
            I::F64Copysign => self.binop(Op::F64Copysign, None),

            I::I32WrapI64 => self.unop(Op::I32WrapI64),
            I::I32TruncF32S => self.unop(Op::I32TruncF32S),
            I::I32TruncF32U => self.unop(Op::I32TruncF32U),
            I::I32TruncF64S => self.unop(Op::I32TruncF64S),
            I::I32TruncF64U => self.unop(Op::I32TruncF64U),
            I::I64ExtendI32S => self.unop(Op::I64ExtendI32S),
            I::I64ExtendI32U => self.unop(Op::I64ExtendI32U),
            I::I64TruncF32S => self.unop(Op::I64TruncF32S),
            I::I64TruncF32U => self.unop(Op::I64TruncF32U),
            I::I64TruncF64S => self.unop(Op::I64TruncF64S),
            I::I64TruncF64U => self.unop(Op::I64TruncF64U),
            I::F32ConvertI32S => self.unop(Op::F32ConvertI32S),
            I::F32ConvertI32U => self.unop(Op::F32ConvertI32U),
            I::F32ConvertI64S => self.unop(Op::F32ConvertI64S),
            I::F32ConvertI64U => self.unop(Op::F32ConvertI64U),
            I::F32DemoteF64 => self.unop(Op::F32DemoteF64),
            I::F64ConvertI32S => self.unop(Op::F64ConvertI32S),
            I::F64ConvertI32U => self.unop(Op::F64ConvertI32U),
            I::F64ConvertI64S => self.unop(Op::F64ConvertI64S),
            I::F64ConvertI64U => self.unop(Op::F64ConvertI64U),
            I::F64PromoteF32 => self.unop(Op::F64PromoteF32),
            // Reinterprets keep the slot bits as-is: the op disappears.
            I::I32ReinterpretF32
            | I::I64ReinterpretF64
            | I::F32ReinterpretI32
            | I::F64ReinterpretI64 => self.fused += 1,

            I::Unreachable
            | I::Block(_)
            | I::Loop(_)
            | I::If(_)
            | I::Else
            | I::End
            | I::Br(_)
            | I::BrIf(_)
            | I::BrTable(_)
            | I::Return
            | I::Call(_)
            | I::CallIndirect { .. } => unreachable!("control op in simple(): {i:?}"),
        }
    }
}

/// Compile one (validated) function into the pre-decoded representation.
pub fn lower_function(module: &Module, func_idx: u32) -> Result<LoweredFunc, String> {
    let body = module.func_body(func_idx).ok_or("no body (imported function)")?;
    let ft = module.func_type(func_idx).ok_or("no type")?;
    let param_count = ft.params.len();
    let local_total = param_count + body.local_count() as usize;
    if local_total > u16::MAX as usize {
        return Err("too many locals for the lowered tier".into());
    }
    let result_count = ft.results.len() as u16;

    let mut lo = Lowerer {
        module,
        ops: Vec::with_capacity(body.code.len() / 2),
        tables: Vec::new(),
        vstack: Vec::new(),
        ctls: vec![Ctl {
            kind: CtlKind::Func,
            height: 0,
            params: 0,
            results: result_count,
            head: 0,
            fixups: Vec::new(),
            else_fixup: None,
            entry_live: true,
        }],
        nlocals: local_total as u16,
        result_count,
        max_height: 0,
        live: true,
        fused: 0,
        source_instrs: 0,
    };

    let code = &body.code;
    let mut pos = 0usize;
    while pos < code.len() && !lo.ctls.is_empty() {
        let (instr, n) = read_instr(&code[pos..]).map_err(|e| e.to_string())?;
        pos += n;
        lo.source_instrs += 1;
        lo.step(instr)?;
    }
    let frame = local_total + lo.max_height;
    if frame > u16::MAX as usize {
        return Err("frame too large for the lowered tier".into());
    }
    Ok(LoweredFunc {
        ops: lo.ops,
        tables: lo.tables,
        param_count: param_count as u16,
        local_count: (local_total - param_count) as u16,
        result_count,
        frame_size: frame as u16,
        fused: lo.fused,
        source_instrs: lo.source_instrs,
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// One suspended (or current) activation: compiled code, frame base into
/// the shared register file, and the resume pc.
struct LFrame {
    func: Arc<LoweredFunc>,
    base: usize,
    pc: usize,
}

/// Get or compile the lowered code for a function, charging the instance's
/// stats on first touch (each instance pays for the code mapped into it,
/// even though compilation is shared per module).
fn lowered_func(inst: &mut Instance, func_idx: u32) -> Result<Arc<LoweredFunc>, Trap> {
    let imported = inst.module.num_imported_funcs();
    let local_idx = (func_idx - imported) as usize;
    if let Some(f) = &inst.lowered[local_idx] {
        return Ok(Arc::clone(f));
    }
    let module = Arc::clone(&inst.module);
    let lf = shared_lowered(&module, func_idx)?;
    inst.stats.lowered_bytes += lf.memory_bytes();
    inst.stats.fused_ops += lf.fused as u64;
    inst.lowered[local_idx] = Some(Arc::clone(&lf));
    Ok(lf)
}

fn resolve_indirect(inst: &Instance, type_idx: u32, elem: usize) -> Result<u32, Trap> {
    let entry = inst.table.get(elem).ok_or(Trap::TableOutOfBounds)?;
    let f = entry.ok_or(Trap::UninitializedElement)?;
    let expected = &inst.module.types[type_idx as usize];
    let actual = inst.module.func_type(f).ok_or(Trap::UninitializedElement)?;
    if actual != expected {
        return Err(Trap::IndirectCallTypeMismatch);
    }
    Ok(f)
}

/// Invoke `func_idx` with typed arguments through the lowered executor.
pub(crate) fn invoke(
    inst: &mut Instance,
    func_idx: u32,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let imported = inst.module.num_imported_funcs();
    if func_idx < imported {
        return inst.call_host(func_idx, args);
    }
    let result_types = inst.module.func_type(func_idx).expect("validated").results.clone();

    // Reuse the instance's slot buffer as the register file across calls.
    let mut regs = std::mem::take(&mut inst.value_stack);
    regs.clear();
    let outcome = run(inst, &mut regs, func_idx, args);
    let results = outcome.map(|()| {
        result_types.iter().enumerate().map(|(i, t)| Value::from_slot(regs[i], *t)).collect()
    });
    regs.clear();
    inst.value_stack = regs;
    results
}

fn run(
    inst: &mut Instance,
    regs: &mut Vec<Slot>,
    func_idx: u32,
    args: &[Value],
) -> Result<(), Trap> {
    let func = lowered_func(inst, func_idx)?;
    let imported = inst.module.num_imported_funcs();
    regs.resize(func.frame_size as usize, Slot(0));
    for (i, v) in args.iter().enumerate() {
        regs[i] = v.to_slot();
    }
    if regs.len() as u64 > inst.stats.peak_stack_slots {
        inst.stats.peak_stack_slots = regs.len() as u64;
    }
    let mut frames: Vec<LFrame> = Vec::new();
    let mut cur = LFrame { func, base: 0, pc: 0 };
    // Declared before the dispatch macros so their bodies can see it
    // (macro hygiene resolves identifiers at the definition site).
    let mut w: OpWord;

    macro_rules! r {
        ($i:expr) => {
            regs[cur.base + $i as usize]
        };
    }
    macro_rules! mem {
        () => {
            inst.memory.as_mut().expect("validated memory access")
        };
    }
    macro_rules! jump {
        () => {
            cur.pc = (w.imm & TARGET_MASK) as usize
        };
    }
    macro_rules! bin {
        ($get:ident, $from:ident, $f:expr) => {{
            let x = r!(w.b).$get();
            let y = r!(w.c).$get();
            r!(w.a) = Slot::$from($f(x, y));
        }};
    }
    macro_rules! binimm {
        ($get:ident, $from:ident, $f:expr) => {{
            let x = r!(w.b).$get();
            let y = Slot(w.imm).$get();
            r!(w.a) = Slot::$from($f(x, y));
        }};
    }
    macro_rules! rel {
        ($get:ident, $f:expr) => {{
            let x = r!(w.b).$get();
            let y = r!(w.c).$get();
            r!(w.a) = Slot::from_bool($f(&x, &y));
        }};
    }
    macro_rules! un {
        ($get:ident, $from:ident, $f:expr) => {{
            let x = r!(w.b).$get();
            r!(w.a) = Slot::$from($f(x));
        }};
    }
    macro_rules! ld {
        ($n:literal, $conv:expr) => {{
            let addr = r!(w.b).u32();
            let bytes: [u8; $n] = mem!().read(addr, w.imm as u32)?;
            r!(w.a) = $conv(bytes);
        }};
    }
    macro_rules! ldat {
        ($n:literal, $conv:expr) => {{
            let bytes: [u8; $n] = mem!().read(w.imm as u32, 0)?;
            r!(w.a) = $conv(bytes);
        }};
    }
    macro_rules! st {
        ($get:ident, $to:expr) => {{
            let v = r!(w.c).$get();
            let addr = r!(w.b).u32();
            mem!().write(addr, w.imm as u32, $to(v))?;
        }};
    }
    macro_rules! stat {
        ($get:ident, $to:expr) => {{
            let v = r!(w.c).$get();
            mem!().write(w.imm as u32, 0, $to(v))?;
        }};
    }
    macro_rules! brrel {
        ($get:ident, $f:expr) => {{
            let x = r!(w.b).$get();
            let y = r!(w.c).$get();
            if $f(x, y) {
                jump!();
            }
        }};
    }
    macro_rules! shuffle {
        ($dst:expr, $src:expr, $n:expr) => {{
            let d = cur.base + $dst as usize;
            let s = cur.base + $src as usize;
            if d != s {
                regs.copy_within(s..s + $n as usize, d);
            }
        }};
    }
    macro_rules! do_call {
        ($f:expr) => {{
            let f: u32 = $f;
            let ab = cur.base + w.a as usize;
            if f < imported {
                // Host calls need the typed signature; clone it once here
                // (the hot Wasm→Wasm path below avoids the allocation).
                let ft = inst.module.func_type(f).expect("validated").clone();
                let call_args: Vec<Value> = ft
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Value::from_slot(regs[ab + i], *t))
                    .collect();
                let results = inst.call_host(f, &call_args)?;
                if results.len() != ft.results.len() {
                    return Err(Trap::HostError(format!(
                        "host function returned {} values, expected {}",
                        results.len(),
                        ft.results.len()
                    )));
                }
                for (i, v) in results.into_iter().enumerate() {
                    regs[ab + i] = v.to_slot();
                }
            } else {
                if frames.len() + 1 >= inst.config.max_call_depth {
                    return Err(Trap::StackOverflow);
                }
                let callee = lowered_func(inst, f)?;
                let need = ab + callee.frame_size as usize;
                if regs.len() < need {
                    regs.resize(need, Slot(0));
                }
                // Args are already in place at the callee's base; zero the
                // declared locals (the region may hold stale slots).
                let lp = callee.param_count as usize;
                let ln = lp + callee.local_count as usize;
                for s in &mut regs[ab + lp..ab + ln] {
                    *s = Slot(0);
                }
                if need as u64 > inst.stats.peak_stack_slots {
                    inst.stats.peak_stack_slots = need as u64;
                }
                frames.push(std::mem::replace(&mut cur, LFrame { func: callee, base: ab, pc: 0 }));
            }
        }};
    }

    loop {
        w = cur.func.ops[cur.pc];
        cur.pc += 1;
        inst.burn(1)?;
        match w.code {
            Op::Copy => r!(w.a) = r!(w.b),
            Op::Const => r!(w.a) = Slot(w.imm),
            Op::Select => {
                let v = if r!(w.imm as u16).i32() != 0 { r!(w.b) } else { r!(w.c) };
                r!(w.a) = v;
            }
            Op::GlobalGet => r!(w.a) = inst.globals[w.imm as usize],
            Op::GlobalSet => inst.globals[w.imm as usize] = r!(w.b),
            Op::MemorySize => {
                let pages = mem!().size_pages();
                r!(w.a) = Slot::from_u32(pages);
            }
            Op::MemoryGrow => {
                let delta = r!(w.b).u32();
                let grown = mem!().grow(delta);
                r!(w.a) = Slot::from_i32(grown);
            }
            Op::Unreachable => return Err(Trap::Unreachable),

            Op::I32Load => ld!(4, |b| Slot::from_u32(u32::from_le_bytes(b))),
            Op::I64Load => ld!(8, |b| Slot::from_u64(u64::from_le_bytes(b))),
            Op::F32Load => ld!(4, |b| Slot::from_u32(u32::from_le_bytes(b))),
            Op::F64Load => ld!(8, |b| Slot::from_u64(u64::from_le_bytes(b))),
            Op::I32Load8S => ld!(1, |b: [u8; 1]| Slot::from_i32(b[0] as i8 as i32)),
            Op::I32Load8U => ld!(1, |b: [u8; 1]| Slot::from_u32(b[0] as u32)),
            Op::I32Load16S => ld!(2, |b| Slot::from_i32(i16::from_le_bytes(b) as i32)),
            Op::I32Load16U => ld!(2, |b| Slot::from_u32(u16::from_le_bytes(b) as u32)),
            Op::I64Load8S => ld!(1, |b: [u8; 1]| Slot::from_i64(b[0] as i8 as i64)),
            Op::I64Load8U => ld!(1, |b: [u8; 1]| Slot::from_u64(b[0] as u64)),
            Op::I64Load16S => ld!(2, |b| Slot::from_i64(i16::from_le_bytes(b) as i64)),
            Op::I64Load16U => ld!(2, |b| Slot::from_u64(u16::from_le_bytes(b) as u64)),
            Op::I64Load32S => ld!(4, |b| Slot::from_i64(i32::from_le_bytes(b) as i64)),
            Op::I64Load32U => ld!(4, |b| Slot::from_u64(u32::from_le_bytes(b) as u64)),
            Op::I32LoadAt => ldat!(4, |b| Slot::from_u32(u32::from_le_bytes(b))),
            Op::I64LoadAt => ldat!(8, |b| Slot::from_u64(u64::from_le_bytes(b))),
            Op::F32LoadAt => ldat!(4, |b| Slot::from_u32(u32::from_le_bytes(b))),
            Op::F64LoadAt => ldat!(8, |b| Slot::from_u64(u64::from_le_bytes(b))),

            Op::I32Store => st!(u32, |v: u32| v.to_le_bytes()),
            Op::I64Store => st!(u64, |v: u64| v.to_le_bytes()),
            Op::F32Store => st!(u32, |v: u32| v.to_le_bytes()),
            Op::F64Store => st!(u64, |v: u64| v.to_le_bytes()),
            Op::I32Store8 => st!(u32, |v: u32| [v as u8]),
            Op::I32Store16 => st!(u32, |v: u32| (v as u16).to_le_bytes()),
            Op::I64Store8 => st!(u64, |v: u64| [v as u8]),
            Op::I64Store16 => st!(u64, |v: u64| (v as u16).to_le_bytes()),
            Op::I64Store32 => st!(u64, |v: u64| (v as u32).to_le_bytes()),
            Op::I32StoreAt => stat!(u32, |v: u32| v.to_le_bytes()),
            Op::I64StoreAt => stat!(u64, |v: u64| v.to_le_bytes()),
            Op::F32StoreAt => stat!(u32, |v: u32| v.to_le_bytes()),
            Op::F64StoreAt => stat!(u64, |v: u64| v.to_le_bytes()),

            Op::I32Eqz => un!(i32, from_bool, |x| x == 0),
            Op::I32Eq => rel!(i32, i32::eq),
            Op::I32Ne => rel!(i32, i32::ne),
            Op::I32LtS => rel!(i32, i32::lt),
            Op::I32LtU => rel!(u32, u32::lt),
            Op::I32GtS => rel!(i32, i32::gt),
            Op::I32GtU => rel!(u32, u32::gt),
            Op::I32LeS => rel!(i32, i32::le),
            Op::I32LeU => rel!(u32, u32::le),
            Op::I32GeS => rel!(i32, i32::ge),
            Op::I32GeU => rel!(u32, u32::ge),
            Op::I64Eqz => un!(i64, from_bool, |x| x == 0),
            Op::I64Eq => rel!(i64, i64::eq),
            Op::I64Ne => rel!(i64, i64::ne),
            Op::I64LtS => rel!(i64, i64::lt),
            Op::I64LtU => rel!(u64, u64::lt),
            Op::I64GtS => rel!(i64, i64::gt),
            Op::I64GtU => rel!(u64, u64::gt),
            Op::I64LeS => rel!(i64, i64::le),
            Op::I64LeU => rel!(u64, u64::le),
            Op::I64GeS => rel!(i64, i64::ge),
            Op::I64GeU => rel!(u64, u64::ge),
            Op::F32Eq => rel!(f32, |a: &f32, b: &f32| a == b),
            Op::F32Ne => rel!(f32, |a: &f32, b: &f32| a != b),
            Op::F32Lt => rel!(f32, |a: &f32, b: &f32| a < b),
            Op::F32Gt => rel!(f32, |a: &f32, b: &f32| a > b),
            Op::F32Le => rel!(f32, |a: &f32, b: &f32| a <= b),
            Op::F32Ge => rel!(f32, |a: &f32, b: &f32| a >= b),
            Op::F64Eq => rel!(f64, |a: &f64, b: &f64| a == b),
            Op::F64Ne => rel!(f64, |a: &f64, b: &f64| a != b),
            Op::F64Lt => rel!(f64, |a: &f64, b: &f64| a < b),
            Op::F64Gt => rel!(f64, |a: &f64, b: &f64| a > b),
            Op::F64Le => rel!(f64, |a: &f64, b: &f64| a <= b),
            Op::F64Ge => rel!(f64, |a: &f64, b: &f64| a >= b),

            Op::I32Clz => un!(u32, from_u32, |x: u32| x.leading_zeros()),
            Op::I32Ctz => un!(u32, from_u32, |x: u32| x.trailing_zeros()),
            Op::I32Popcnt => un!(u32, from_u32, |x: u32| x.count_ones()),
            Op::I32Add => bin!(i32, from_i32, i32::wrapping_add),
            Op::I32Sub => bin!(i32, from_i32, i32::wrapping_sub),
            Op::I32Mul => bin!(i32, from_i32, i32::wrapping_mul),
            Op::I32DivS => {
                let x = r!(w.b).i32();
                let y = r!(w.c).i32();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                if x == i32::MIN && y == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                r!(w.a) = Slot::from_i32(x.wrapping_div(y));
            }
            Op::I32DivU => {
                let x = r!(w.b).u32();
                let y = r!(w.c).u32();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_u32(x / y);
            }
            Op::I32RemS => {
                let x = r!(w.b).i32();
                let y = r!(w.c).i32();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_i32(x.wrapping_rem(y));
            }
            Op::I32RemU => {
                let x = r!(w.b).u32();
                let y = r!(w.c).u32();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_u32(x % y);
            }
            Op::I32And => bin!(u32, from_u32, |x, y| x & y),
            Op::I32Or => bin!(u32, from_u32, |x, y| x | y),
            Op::I32Xor => bin!(u32, from_u32, |x, y| x ^ y),
            Op::I32Shl => bin!(u32, from_u32, |x: u32, y: u32| x.wrapping_shl(y)),
            Op::I32ShrS => {
                let x = r!(w.b).i32();
                let y = r!(w.c).u32();
                r!(w.a) = Slot::from_i32(x.wrapping_shr(y));
            }
            Op::I32ShrU => bin!(u32, from_u32, |x: u32, y: u32| x.wrapping_shr(y)),
            Op::I32Rotl => bin!(u32, from_u32, |x: u32, y: u32| x.rotate_left(y & 31)),
            Op::I32Rotr => bin!(u32, from_u32, |x: u32, y: u32| x.rotate_right(y & 31)),
            Op::I32AddImm => binimm!(i32, from_i32, i32::wrapping_add),
            Op::I32SubImm => binimm!(i32, from_i32, i32::wrapping_sub),
            Op::I32MulImm => binimm!(i32, from_i32, i32::wrapping_mul),
            Op::I32AndImm => binimm!(u32, from_u32, |x, y| x & y),
            Op::I32OrImm => binimm!(u32, from_u32, |x, y| x | y),
            Op::I32XorImm => binimm!(u32, from_u32, |x, y| x ^ y),
            Op::I32ShlImm => binimm!(u32, from_u32, |x: u32, y: u32| x.wrapping_shl(y)),
            Op::I32ShrSImm => {
                let x = r!(w.b).i32();
                let y = Slot(w.imm).u32();
                r!(w.a) = Slot::from_i32(x.wrapping_shr(y));
            }
            Op::I32ShrUImm => binimm!(u32, from_u32, |x: u32, y: u32| x.wrapping_shr(y)),

            Op::I64Clz => un!(u64, from_u64, |x: u64| x.leading_zeros() as u64),
            Op::I64Ctz => un!(u64, from_u64, |x: u64| x.trailing_zeros() as u64),
            Op::I64Popcnt => un!(u64, from_u64, |x: u64| x.count_ones() as u64),
            Op::I64Add => bin!(i64, from_i64, i64::wrapping_add),
            Op::I64Sub => bin!(i64, from_i64, i64::wrapping_sub),
            Op::I64Mul => bin!(i64, from_i64, i64::wrapping_mul),
            Op::I64DivS => {
                let x = r!(w.b).i64();
                let y = r!(w.c).i64();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                if x == i64::MIN && y == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                r!(w.a) = Slot::from_i64(x.wrapping_div(y));
            }
            Op::I64DivU => {
                let x = r!(w.b).u64();
                let y = r!(w.c).u64();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_u64(x / y);
            }
            Op::I64RemS => {
                let x = r!(w.b).i64();
                let y = r!(w.c).i64();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_i64(x.wrapping_rem(y));
            }
            Op::I64RemU => {
                let x = r!(w.b).u64();
                let y = r!(w.c).u64();
                if y == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                r!(w.a) = Slot::from_u64(x % y);
            }
            Op::I64And => bin!(u64, from_u64, |x, y| x & y),
            Op::I64Or => bin!(u64, from_u64, |x, y| x | y),
            Op::I64Xor => bin!(u64, from_u64, |x, y| x ^ y),
            Op::I64Shl => bin!(u64, from_u64, |x: u64, y: u64| x.wrapping_shl(y as u32)),
            Op::I64ShrS => {
                let x = r!(w.b).i64();
                let y = r!(w.c).u64();
                r!(w.a) = Slot::from_i64(x.wrapping_shr(y as u32));
            }
            Op::I64ShrU => bin!(u64, from_u64, |x: u64, y: u64| x.wrapping_shr(y as u32)),
            Op::I64Rotl => bin!(u64, from_u64, |x: u64, y: u64| x.rotate_left((y & 63) as u32)),
            Op::I64Rotr => bin!(u64, from_u64, |x: u64, y: u64| x.rotate_right((y & 63) as u32)),

            Op::F32Abs => un!(f32, from_f32, f32::abs),
            Op::F32Neg => un!(f32, from_f32, |x: f32| -x),
            Op::F32Ceil => un!(f32, from_f32, f32::ceil),
            Op::F32Floor => un!(f32, from_f32, f32::floor),
            Op::F32Trunc => un!(f32, from_f32, f32::trunc),
            Op::F32Nearest => un!(f32, from_f32, nearest_f32),
            Op::F32Sqrt => un!(f32, from_f32, f32::sqrt),
            Op::F32Add => bin!(f32, from_f32, |x, y| x + y),
            Op::F32Sub => bin!(f32, from_f32, |x, y| x - y),
            Op::F32Mul => bin!(f32, from_f32, |x, y| x * y),
            Op::F32Div => bin!(f32, from_f32, |x, y| x / y),
            Op::F32Min => bin!(f32, from_f32, wasm_min_f32),
            Op::F32Max => bin!(f32, from_f32, wasm_max_f32),
            Op::F32Copysign => bin!(f32, from_f32, f32::copysign),
            Op::F64Abs => un!(f64, from_f64, f64::abs),
            Op::F64Neg => un!(f64, from_f64, |x: f64| -x),
            Op::F64Ceil => un!(f64, from_f64, f64::ceil),
            Op::F64Floor => un!(f64, from_f64, f64::floor),
            Op::F64Trunc => un!(f64, from_f64, f64::trunc),
            Op::F64Nearest => un!(f64, from_f64, nearest_f64),
            Op::F64Sqrt => un!(f64, from_f64, f64::sqrt),
            Op::F64Add => bin!(f64, from_f64, |x, y| x + y),
            Op::F64Sub => bin!(f64, from_f64, |x, y| x - y),
            Op::F64Mul => bin!(f64, from_f64, |x, y| x * y),
            Op::F64Div => bin!(f64, from_f64, |x, y| x / y),
            Op::F64Min => bin!(f64, from_f64, wasm_min_f64),
            Op::F64Max => bin!(f64, from_f64, wasm_max_f64),
            Op::F64Copysign => bin!(f64, from_f64, f64::copysign),

            Op::I32WrapI64 => un!(i64, from_i32, |x: i64| x as i32),
            Op::I32TruncF32S => {
                let x = r!(w.b).f32();
                r!(w.a) = Slot::from_i32(trunc::i32_from_f32(x)?);
            }
            Op::I32TruncF32U => {
                let x = r!(w.b).f32();
                r!(w.a) = Slot::from_u32(trunc::u32_from_f32(x)?);
            }
            Op::I32TruncF64S => {
                let x = r!(w.b).f64();
                r!(w.a) = Slot::from_i32(trunc::i32_from_f64(x)?);
            }
            Op::I32TruncF64U => {
                let x = r!(w.b).f64();
                r!(w.a) = Slot::from_u32(trunc::u32_from_f64(x)?);
            }
            Op::I64ExtendI32S => un!(i32, from_i64, |x: i32| x as i64),
            Op::I64ExtendI32U => un!(u32, from_u64, |x: u32| x as u64),
            Op::I64TruncF32S => {
                let x = r!(w.b).f32();
                r!(w.a) = Slot::from_i64(trunc::i64_from_f32(x)?);
            }
            Op::I64TruncF32U => {
                let x = r!(w.b).f32();
                r!(w.a) = Slot::from_u64(trunc::u64_from_f32(x)?);
            }
            Op::I64TruncF64S => {
                let x = r!(w.b).f64();
                r!(w.a) = Slot::from_i64(trunc::i64_from_f64(x)?);
            }
            Op::I64TruncF64U => {
                let x = r!(w.b).f64();
                r!(w.a) = Slot::from_u64(trunc::u64_from_f64(x)?);
            }
            Op::F32ConvertI32S => un!(i32, from_f32, |x: i32| x as f32),
            Op::F32ConvertI32U => un!(u32, from_f32, |x: u32| x as f32),
            Op::F32ConvertI64S => un!(i64, from_f32, |x: i64| x as f32),
            Op::F32ConvertI64U => un!(u64, from_f32, |x: u64| x as f32),
            Op::F32DemoteF64 => un!(f64, from_f32, |x: f64| x as f32),
            Op::F64ConvertI32S => un!(i32, from_f64, |x: i32| x as f64),
            Op::F64ConvertI32U => un!(u32, from_f64, |x: u32| x as f64),
            Op::F64ConvertI64S => un!(i64, from_f64, |x: i64| x as f64),
            Op::F64ConvertI64U => un!(u64, from_f64, |x: u64| x as f64),
            Op::F64PromoteF32 => un!(f32, from_f64, |x: f32| x as f64),

            Op::Br => jump!(),
            Op::BrShuffle => {
                shuffle!(w.a, w.b, w.c);
                jump!();
            }
            Op::BrIfz => {
                if r!(w.b).i32() == 0 {
                    jump!();
                }
            }
            Op::BrIf => {
                if r!(w.b).i32() != 0 {
                    jump!();
                }
            }
            Op::BrIfShuffle => {
                if r!(w.b).i32() != 0 {
                    let src = (w.imm >> 32) as u16;
                    shuffle!(w.a, src, w.c);
                    jump!();
                }
            }
            Op::BrI32Eq => brrel!(i32, |x, y| x == y),
            Op::BrI32Ne => brrel!(i32, |x, y| x != y),
            Op::BrI32LtS => brrel!(i32, |x, y| x < y),
            Op::BrI32LtU => brrel!(u32, |x, y| x < y),
            Op::BrI32GtS => brrel!(i32, |x, y| x > y),
            Op::BrI32GtU => brrel!(u32, |x, y| x > y),
            Op::BrI32LeS => brrel!(i32, |x, y| x <= y),
            Op::BrI32LeU => brrel!(u32, |x, y| x <= y),
            Op::BrI32GeS => brrel!(i32, |x, y| x >= y),
            Op::BrI32GeU => brrel!(u32, |x, y| x >= y),
            Op::BrTable => {
                let sel = r!(w.b).u32() as usize;
                let br = {
                    let t = &cur.func.tables[w.imm as usize];
                    *t.arms.get(sel).unwrap_or(&t.default)
                };
                if br.arity > 0 {
                    shuffle!(br.dst, br.src, br.arity);
                }
                cur.pc = br.target as usize;
            }
            Op::Ret => {
                let res = cur.func.result_count as usize;
                if res > 0 && w.b != 0 {
                    let s = cur.base + w.b as usize;
                    regs.copy_within(s..s + res, cur.base);
                }
                match frames.pop() {
                    Some(f) => cur = f,
                    None => return Ok(()),
                }
            }
            Op::Call => do_call!(w.imm as u32),
            Op::CallIndirect => {
                // Read the selector *before* the callee's locals are
                // zeroed: it lives just past the argument window, inside
                // the callee's frame.
                let elem = r!(w.b).u32() as usize;
                let f = resolve_indirect(inst, w.imm as u32, elem)?;
                do_call!(f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instance::{ExecTier, Imports, Instance, InstanceConfig};
    use crate::types::{FuncType, ValType};

    fn lowered_instance(b: ModuleBuilder) -> Instance {
        Instance::instantiate(
            Arc::new(b.build()),
            Imports::new(),
            InstanceConfig { tier: ExecTier::Lowered, ..Default::default() },
        )
        .unwrap()
    }

    fn sum_to_builder() -> ModuleBuilder {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(Instruction::I32Eqz).br_if(1);
                    f.local_get(acc).local_get(0).op(Instruction::I32Add).local_set(acc);
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(acc);
        });
        b.export_func("sum_to", f);
        b
    }

    #[test]
    fn lowered_code_is_bigger_than_bytecode() {
        let module = sum_to_builder().build();
        let bytecode = module.code_size();
        let lf = lower_function(&module, 0).unwrap();
        // Fusion shrinks the op count, but each op is still 16 bytes vs
        // 1–3 bytes of bytecode: the JIT/AOT memory premium survives.
        assert!(
            lf.memory_bytes() >= 2 * bytecode,
            "lowered {} vs bytecode {bytecode}",
            lf.memory_bytes()
        );
    }

    #[test]
    fn fusion_collapses_the_hot_loop() {
        let module = sum_to_builder().build();
        let lf = lower_function(&module, 0).unwrap();
        assert!(lf.fused > 0, "no fusion events recorded");
        assert!(
            lf.ops.len() < lf.source_instrs as usize,
            "{} ops from {} bytecode instrs — fusion should shrink the stream",
            lf.ops.len(),
            lf.source_instrs
        );
    }

    #[test]
    fn loops_and_branches_execute() {
        let mut inst = lowered_instance(sum_to_builder());
        assert_eq!(inst.invoke("sum_to", &[Value::I32(100)]).unwrap(), vec![Value::I32(5050)]);
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0);
            f.if_else(
                BlockType::Value(ValType::I32),
                |f| {
                    f.i32_const(10);
                },
                |f| {
                    f.i32_const(20);
                },
            );
        });
        b.export_func("pick", f);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("pick", &[Value::I32(1)]).unwrap(), vec![Value::I32(10)]);
        assert_eq!(inst.invoke("pick", &[Value::I32(0)]).unwrap(), vec![Value::I32(20)]);
    }

    #[test]
    fn dead_code_is_eliminated() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(1).return_();
            // Dead:
            f.i32_const(2).drop_();
        });
        let module = b.build();
        let lf = lower_function(&module, 0).unwrap();
        // The live const materializes exactly once; the dead const/drop
        // are not emitted at all.
        let consts = lf.ops.iter().filter(|w| w.code == Op::Const).count();
        assert_eq!(consts, 1, "ops: {:?}", lf.ops);
    }

    #[test]
    fn br_table_lowered() {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.block(BlockType::Empty, |f| {
                    f.block(BlockType::Empty, |f| {
                        f.local_get(0).br_table(vec![0, 1], 1);
                    });
                    f.i32_const(7).br(1);
                });
                f.i32_const(8);
            });
        });
        b.export_func("t", f);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("t", &[Value::I32(0)]).unwrap(), vec![Value::I32(7)]);
        assert_eq!(inst.invoke("t", &[Value::I32(1)]).unwrap(), vec![Value::I32(8)]);
        assert_eq!(inst.invoke("t", &[Value::I32(99)]).unwrap(), vec![Value::I32(8)]);
    }

    #[test]
    fn nested_calls() {
        let mut b = ModuleBuilder::new();
        let sig = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
        let inc = b.func(sig.clone(), |f| {
            f.local_get(0).i32_const(1).op(Instruction::I32Add);
        });
        let twice = b.func(sig, |f| {
            f.local_get(0).call(inc).call(inc);
        });
        b.export_func("twice", twice);
        let mut inst = lowered_instance(b);
        assert_eq!(inst.invoke("twice", &[Value::I32(40)]).unwrap(), vec![Value::I32(42)]);
    }

    #[test]
    fn compiled_code_is_shared_across_instances() {
        let module = Arc::new(sum_to_builder().build());
        let a = shared_lowered(&module, 0).unwrap();
        let b = shared_lowered(&module, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second fetch must reuse the first compilation");

        let config = InstanceConfig { tier: ExecTier::Lowered, ..Default::default() };
        let i1 =
            Instance::instantiate(Arc::clone(&module), Imports::new(), config.clone()).unwrap();
        let i2 = Instance::instantiate(Arc::clone(&module), Imports::new(), config).unwrap();
        // Shared compilation, but each instance is still charged the full
        // code footprint (the code is mapped into both sandboxes).
        assert!(i1.stats.lowered_bytes > 0);
        assert_eq!(i1.stats.lowered_bytes, i2.stats.lowered_bytes);
        assert_eq!(i1.stats.fused_ops, i2.stats.fused_ops);
    }
}
