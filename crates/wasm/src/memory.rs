//! Linear memory: 64 KiB pages, bounds-checked little-endian access.

use crate::types::Limits;
use crate::values::Trap;

/// Size of one WebAssembly page.
pub const WASM_PAGE_SIZE: u32 = 65536;

/// Hard cap on pages (the 4 GiB i32 address space).
pub const MAX_PAGES: u32 = 65536;

/// A linear memory instance.
#[derive(Debug, Clone)]
pub struct LinearMemory {
    data: Vec<u8>,
    limits: Limits,
}

impl LinearMemory {
    /// Allocate with `limits.min` pages zeroed.
    pub fn new(limits: Limits) -> LinearMemory {
        let bytes = (limits.min as usize) * WASM_PAGE_SIZE as usize;
        LinearMemory { data: vec![0; bytes], limits }
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.data.len() / WASM_PAGE_SIZE as usize) as u32
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// `memory.grow`: returns the old size in pages, or -1 on failure.
    pub fn grow(&mut self, delta_pages: u32) -> i32 {
        let old = self.size_pages();
        let new = match old.checked_add(delta_pages) {
            Some(n) => n,
            None => return -1,
        };
        let cap = self.limits.max.unwrap_or(MAX_PAGES).min(MAX_PAGES);
        if new > cap {
            return -1;
        }
        self.data.resize(new as usize * WASM_PAGE_SIZE as usize, 0);
        old as i32
    }

    #[inline]
    fn range(&self, addr: u32, offset: u32, len: usize) -> Result<usize, Trap> {
        let ea = addr as u64 + offset as u64;
        let end = ea + len as u64;
        if end > self.data.len() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        Ok(ea as usize)
    }

    /// Read `N` bytes at `addr + offset`.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u32, offset: u32) -> Result<[u8; N], Trap> {
        let start = self.range(addr, offset, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[start..start + N]);
        Ok(out)
    }

    /// Write `N` bytes at `addr + offset`.
    #[inline]
    pub fn write<const N: usize>(
        &mut self,
        addr: u32,
        offset: u32,
        v: [u8; N],
    ) -> Result<(), Trap> {
        let start = self.range(addr, offset, N)?;
        self.data[start..start + N].copy_from_slice(&v);
        Ok(())
    }

    /// Read an arbitrary slice (host/WASI access).
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = self.range(addr, 0, len as usize)?;
        Ok(&self.data[start..start + len as usize])
    }

    /// Write an arbitrary slice (host/WASI access, data segments).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let start = self.range(addr, 0, bytes.len())?;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    // Typed accessors used by both execution tiers.

    pub fn load_u32(&self, addr: u32, offset: u32) -> Result<u32, Trap> {
        Ok(u32::from_le_bytes(self.read::<4>(addr, offset)?))
    }

    pub fn load_u64(&self, addr: u32, offset: u32) -> Result<u64, Trap> {
        Ok(u64::from_le_bytes(self.read::<8>(addr, offset)?))
    }

    pub fn store_u32(&mut self, addr: u32, offset: u32, v: u32) -> Result<(), Trap> {
        self.write(addr, offset, v.to_le_bytes())
    }

    pub fn store_u64(&mut self, addr: u32, offset: u32, v: u64) -> Result<(), Trap> {
        self.write(addr, offset, v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = LinearMemory::new(Limits::new(1, Some(2)));
        assert_eq!(m.size_pages(), 1);
        assert_eq!(m.load_u64(0, 0).unwrap(), 0);
        assert_eq!(m.load_u32(WASM_PAGE_SIZE - 4, 0).unwrap(), 0);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = LinearMemory::new(Limits::new(1, None));
        m.store_u32(100, 4, 0xdead_beef).unwrap();
        assert_eq!(m.load_u32(100, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.load_u32(104, 0).unwrap(), 0xdead_beef);
        // Little-endian byte order.
        assert_eq!(m.read::<1>(104, 0).unwrap(), [0xef]);
    }

    #[test]
    fn bounds_checked() {
        let mut m = LinearMemory::new(Limits::new(1, None));
        assert_eq!(m.load_u32(WASM_PAGE_SIZE - 3, 0), Err(Trap::MemoryOutOfBounds));
        assert_eq!(m.store_u64(WASM_PAGE_SIZE - 7, 0, 1), Err(Trap::MemoryOutOfBounds));
        // Offset overflow must not wrap.
        assert_eq!(m.load_u32(u32::MAX, u32::MAX), Err(Trap::MemoryOutOfBounds));
        assert!(m.read_bytes(0, WASM_PAGE_SIZE).is_ok());
        assert!(m.read_bytes(1, WASM_PAGE_SIZE).is_err());
    }

    #[test]
    fn grow_respects_max() {
        let mut m = LinearMemory::new(Limits::new(1, Some(3)));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.grow(2), -1, "beyond max");
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        // Grown memory is zeroed.
        assert_eq!(m.load_u64((3 * WASM_PAGE_SIZE) - 8, 0).unwrap(), 0);
    }

    #[test]
    fn grow_zero_reports_size() {
        let mut m = LinearMemory::new(Limits::new(2, None));
        assert_eq!(m.grow(0), 2);
    }

    #[test]
    fn write_bytes_roundtrip() {
        let mut m = LinearMemory::new(Limits::new(1, None));
        m.write_bytes(8, b"hello world").unwrap();
        assert_eq!(m.read_bytes(8, 11).unwrap(), b"hello world");
    }
}
