//! The decoded module structure (spec §2.5).
//!
//! Function bodies are kept as **raw expression bytes** (`bytelite::Bytes`,
//! zero-copy slices of the module binary). This mirrors WAMR's classic
//! interpreter, which executes bytecode in place: keeping bodies un-expanded
//! is precisely the memory property the paper's WAMR-in-crun integration
//! exploits, and the lowering tier ([`crate::lowered`]) is the explicit,
//! memory-hungry alternative.

use bytelite::Bytes;

use crate::types::{FuncType, GlobalType, MemoryType, TableType, ValType};

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportDesc {
    /// A function with the given type index.
    Func(u32),
    Table(TableType),
    Memory(MemoryType),
    Global(GlobalType),
}

/// One import: `module.name` with a description.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    pub module: String,
    pub name: String,
    pub desc: ImportDesc,
}

/// What an export exposes (index into the respective space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportDesc {
    Func(u32),
    Table(u32),
    Memory(u32),
    Global(u32),
}

/// One export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    pub name: String,
    pub desc: ExportDesc,
}

/// A constant initializer expression (MVP subset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstExpr {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// Reference to an (imported, immutable) global.
    GlobalGet(u32),
}

/// A module-defined global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Global {
    pub ty: GlobalType,
    pub init: ConstExpr,
}

/// An active element segment (table initializer).
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSegment {
    pub table: u32,
    pub offset: ConstExpr,
    pub funcs: Vec<u32>,
}

/// An active data segment (memory initializer).
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    pub memory: u32,
    pub offset: ConstExpr,
    pub bytes: Bytes,
}

/// A function body: compressed local declarations plus raw expression bytes
/// (including the terminating `end` opcode).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    pub locals: Vec<(u32, ValType)>,
    pub code: Bytes,
}

impl FuncBody {
    /// Total number of declared locals (excluding parameters).
    pub fn local_count(&self) -> u32 {
        self.locals.iter().map(|(n, _)| *n).sum()
    }

    /// Expand the compressed local declarations into a flat type list.
    pub fn expand_locals(&self) -> Vec<ValType> {
        let mut out = Vec::with_capacity(self.local_count() as usize);
        for (count, ty) in &self.locals {
            for _ in 0..*count {
                out.push(*ty);
            }
        }
        out
    }
}

/// A decoded WebAssembly module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    pub types: Vec<FuncType>,
    pub imports: Vec<Import>,
    /// Type indices of module-defined functions.
    pub funcs: Vec<u32>,
    pub tables: Vec<TableType>,
    pub memories: Vec<MemoryType>,
    pub globals: Vec<Global>,
    pub exports: Vec<Export>,
    pub start: Option<u32>,
    pub elements: Vec<ElementSegment>,
    /// Bodies of module-defined functions (parallel to `funcs`).
    pub bodies: Vec<FuncBody>,
    pub data: Vec<DataSegment>,
    /// Custom sections, preserved verbatim.
    pub customs: Vec<(String, Bytes)>,
    /// Shared lowered-tier compilation cache (excluded from `Clone` and
    /// `PartialEq` — it is derived state, not module identity).
    pub(crate) compiled: crate::lowered::CompiledCode,
}

impl Module {
    /// Number of imported functions (they precede local ones in the index
    /// space).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Func(_))).count() as u32
    }

    pub fn num_imported_globals(&self) -> u32 {
        self.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Global(_))).count() as u32
    }

    pub fn num_imported_tables(&self) -> u32 {
        self.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Table(_))).count() as u32
    }

    pub fn num_imported_memories(&self) -> u32 {
        self.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Memory(_))).count() as u32
    }

    /// Total size of the function index space.
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.funcs.len() as u32
    }

    /// Type index of a function in the combined index space.
    pub fn func_type_idx(&self, func_idx: u32) -> Option<u32> {
        let imported = self.num_imported_funcs();
        if func_idx < imported {
            self.imports
                .iter()
                .filter_map(|i| match i.desc {
                    ImportDesc::Func(t) => Some(t),
                    _ => None,
                })
                .nth(func_idx as usize)
        } else {
            self.funcs.get((func_idx - imported) as usize).copied()
        }
    }

    /// Resolved type of a function in the combined index space.
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        self.types.get(self.func_type_idx(func_idx)? as usize)
    }

    /// Body of a module-defined function in the combined index space.
    pub fn func_body(&self, func_idx: u32) -> Option<&FuncBody> {
        let imported = self.num_imported_funcs();
        if func_idx < imported {
            return None;
        }
        self.bodies.get((func_idx - imported) as usize)
    }

    /// Find an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Find an exported function index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        match self.export(name)?.desc {
            ExportDesc::Func(i) => Some(i),
            _ => None,
        }
    }

    /// Total bytes of raw function code — what an in-place interpreter keeps
    /// resident and an eager compiler expands.
    pub fn code_size(&self) -> u64 {
        self.bodies.iter().map(|b| b.code.len() as u64).sum()
    }

    /// Total bytes of active data segments.
    pub fn data_size(&self) -> u64 {
        self.data.iter().map(|d| d.bytes.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_spaces() {
        let mut m = Module::default();
        m.types.push(FuncType::new(vec![], vec![]));
        m.types.push(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.imports.push(Import {
            module: "env".into(),
            name: "f".into(),
            desc: ImportDesc::Func(1),
        });
        m.funcs.push(0);
        m.bodies.push(FuncBody { locals: vec![], code: Bytes::from_static(&[0x0b]) });
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.func_type_idx(0), Some(1));
        assert_eq!(m.func_type_idx(1), Some(0));
        assert_eq!(m.func_type_idx(2), None);
        assert!(m.func_body(0).is_none(), "imports have no body");
        assert!(m.func_body(1).is_some());
    }

    #[test]
    fn locals_expansion() {
        let b = FuncBody {
            locals: vec![(2, ValType::I32), (1, ValType::F64)],
            code: Bytes::from_static(&[0x0b]),
        };
        assert_eq!(b.local_count(), 3);
        assert_eq!(b.expand_locals(), vec![ValType::I32, ValType::I32, ValType::F64]);
    }

    #[test]
    fn export_lookup() {
        let mut m = Module::default();
        m.exports.push(Export { name: "_start".into(), desc: ExportDesc::Func(0) });
        m.exports.push(Export { name: "memory".into(), desc: ExportDesc::Memory(0) });
        assert_eq!(m.exported_func("_start"), Some(0));
        assert_eq!(m.exported_func("memory"), None);
        assert!(m.export("nope").is_none());
    }
}
