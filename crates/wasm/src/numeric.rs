//! Shared execution of all *simple* (non-control, non-call) instructions.
//!
//! Both execution tiers — the in-place interpreter and the lowered-code
//! executor — delegate here, so the ~140 numeric/memory/variable opcodes
//! have exactly one implementation, and the tier-equivalence property tests
//! genuinely test the control-flow machinery rather than duplicated math.

use crate::instr::Instruction;
use crate::memory::LinearMemory;
use crate::values::{nearest_f32, nearest_f64, trunc, Slot, Trap};

/// Result of attempting to execute an instruction as "simple".
pub(crate) enum Simple {
    /// Executed; stack/locals/globals/memory updated.
    Done,
    /// Control-flow or call instruction — the tier must handle it.
    NotSimple,
}

#[inline]
fn pop(stack: &mut Vec<Slot>) -> Slot {
    stack.pop().expect("validated stack")
}

/// Execute `i` if it is a simple instruction.
pub(crate) fn exec_simple(
    i: &Instruction,
    stack: &mut Vec<Slot>,
    locals: &mut [Slot],
    globals: &mut [Slot],
    memory: &mut Option<LinearMemory>,
) -> Result<Simple, Trap> {
    use Instruction as I;
    macro_rules! mem {
        () => {
            memory.as_mut().expect("validated memory access")
        };
    }
    macro_rules! binop {
        (i32, $f:expr) => {{
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32($f(a, b)));
        }};
        (u32, $f:expr) => {{
            let b = pop(stack).u32();
            let a = pop(stack).u32();
            stack.push(Slot::from_u32($f(a, b)));
        }};
        (i64, $f:expr) => {{
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64($f(a, b)));
        }};
        (u64, $f:expr) => {{
            let b = pop(stack).u64();
            let a = pop(stack).u64();
            stack.push(Slot::from_u64($f(a, b)));
        }};
        (f32, $f:expr) => {{
            let b = pop(stack).f32();
            let a = pop(stack).f32();
            stack.push(Slot::from_f32($f(a, b)));
        }};
        (f64, $f:expr) => {{
            let b = pop(stack).f64();
            let a = pop(stack).f64();
            stack.push(Slot::from_f64($f(a, b)));
        }};
    }
    macro_rules! relop {
        ($getter:ident, $f:expr) => {{
            let b = pop(stack).$getter();
            let a = pop(stack).$getter();
            stack.push(Slot::from_bool($f(&a, &b)));
        }};
    }
    macro_rules! unop {
        ($getter:ident, $from:ident, $f:expr) => {{
            let a = pop(stack).$getter();
            stack.push(Slot::$from($f(a)));
        }};
    }
    macro_rules! load {
        ($a:expr, $n:literal, $conv:expr) => {{
            let addr = pop(stack).u32();
            let bytes: [u8; $n] = mem!().read(addr, $a.offset)?;
            stack.push($conv(bytes));
        }};
    }
    macro_rules! store {
        ($a:expr, $getter:ident, $to:expr) => {{
            let v = pop(stack).$getter();
            let addr = pop(stack).u32();
            mem!().write(addr, $a.offset, $to(v))?;
        }};
    }

    match i {
        I::Nop => {}
        I::Drop => {
            pop(stack);
        }
        I::Select => {
            let c = pop(stack).i32();
            let b = pop(stack);
            let a = pop(stack);
            stack.push(if c != 0 { a } else { b });
        }
        I::LocalGet(idx) => stack.push(locals[*idx as usize]),
        I::LocalSet(idx) => locals[*idx as usize] = pop(stack),
        I::LocalTee(idx) => locals[*idx as usize] = *stack.last().expect("validated"),
        I::GlobalGet(idx) => stack.push(globals[*idx as usize]),
        I::GlobalSet(idx) => globals[*idx as usize] = pop(stack),

        I::I32Load(a) => load!(a, 4, |b| Slot::from_u32(u32::from_le_bytes(b))),
        I::I64Load(a) => load!(a, 8, |b| Slot::from_u64(u64::from_le_bytes(b))),
        I::F32Load(a) => load!(a, 4, |b| Slot::from_u32(u32::from_le_bytes(b))),
        I::F64Load(a) => load!(a, 8, |b| Slot::from_u64(u64::from_le_bytes(b))),
        I::I32Load8S(a) => load!(a, 1, |b: [u8; 1]| Slot::from_i32(b[0] as i8 as i32)),
        I::I32Load8U(a) => load!(a, 1, |b: [u8; 1]| Slot::from_u32(b[0] as u32)),
        I::I32Load16S(a) => {
            load!(a, 2, |b| Slot::from_i32(i16::from_le_bytes(b) as i32))
        }
        I::I32Load16U(a) => {
            load!(a, 2, |b| Slot::from_u32(u16::from_le_bytes(b) as u32))
        }
        I::I64Load8S(a) => load!(a, 1, |b: [u8; 1]| Slot::from_i64(b[0] as i8 as i64)),
        I::I64Load8U(a) => load!(a, 1, |b: [u8; 1]| Slot::from_u64(b[0] as u64)),
        I::I64Load16S(a) => {
            load!(a, 2, |b| Slot::from_i64(i16::from_le_bytes(b) as i64))
        }
        I::I64Load16U(a) => {
            load!(a, 2, |b| Slot::from_u64(u16::from_le_bytes(b) as u64))
        }
        I::I64Load32S(a) => {
            load!(a, 4, |b| Slot::from_i64(i32::from_le_bytes(b) as i64))
        }
        I::I64Load32U(a) => {
            load!(a, 4, |b| Slot::from_u64(u32::from_le_bytes(b) as u64))
        }
        I::I32Store(a) => store!(a, u32, |v: u32| v.to_le_bytes()),
        I::I64Store(a) => store!(a, u64, |v: u64| v.to_le_bytes()),
        I::F32Store(a) => store!(a, u32, |v: u32| v.to_le_bytes()),
        I::F64Store(a) => store!(a, u64, |v: u64| v.to_le_bytes()),
        I::I32Store8(a) => store!(a, u32, |v: u32| [v as u8]),
        I::I32Store16(a) => store!(a, u32, |v: u32| (v as u16).to_le_bytes()),
        I::I64Store8(a) => store!(a, u64, |v: u64| [v as u8]),
        I::I64Store16(a) => store!(a, u64, |v: u64| (v as u16).to_le_bytes()),
        I::I64Store32(a) => store!(a, u64, |v: u64| (v as u32).to_le_bytes()),
        I::MemorySize => {
            let pages = mem!().size_pages();
            stack.push(Slot::from_u32(pages));
        }
        I::MemoryGrow => {
            let delta = pop(stack).u32();
            let r = mem!().grow(delta);
            stack.push(Slot::from_i32(r));
        }

        I::I32Const(v) => stack.push(Slot::from_i32(*v)),
        I::I64Const(v) => stack.push(Slot::from_i64(*v)),
        I::F32Const(v) => stack.push(Slot::from_f32(*v)),
        I::F64Const(v) => stack.push(Slot::from_f64(*v)),

        I::I32Eqz => unop!(i32, from_bool, |a| a == 0),
        I::I32Eq => relop!(i32, i32::eq),
        I::I32Ne => relop!(i32, i32::ne),
        I::I32LtS => relop!(i32, i32::lt),
        I::I32LtU => relop!(u32, u32::lt),
        I::I32GtS => relop!(i32, i32::gt),
        I::I32GtU => relop!(u32, u32::gt),
        I::I32LeS => relop!(i32, i32::le),
        I::I32LeU => relop!(u32, u32::le),
        I::I32GeS => relop!(i32, i32::ge),
        I::I32GeU => relop!(u32, u32::ge),
        I::I64Eqz => unop!(i64, from_bool, |a| a == 0),
        I::I64Eq => relop!(i64, i64::eq),
        I::I64Ne => relop!(i64, i64::ne),
        I::I64LtS => relop!(i64, i64::lt),
        I::I64LtU => relop!(u64, u64::lt),
        I::I64GtS => relop!(i64, i64::gt),
        I::I64GtU => relop!(u64, u64::gt),
        I::I64LeS => relop!(i64, i64::le),
        I::I64LeU => relop!(u64, u64::le),
        I::I64GeS => relop!(i64, i64::ge),
        I::I64GeU => relop!(u64, u64::ge),
        I::F32Eq => relop!(f32, |a: &f32, b: &f32| a == b),
        I::F32Ne => relop!(f32, |a: &f32, b: &f32| a != b),
        I::F32Lt => relop!(f32, |a: &f32, b: &f32| a < b),
        I::F32Gt => relop!(f32, |a: &f32, b: &f32| a > b),
        I::F32Le => relop!(f32, |a: &f32, b: &f32| a <= b),
        I::F32Ge => relop!(f32, |a: &f32, b: &f32| a >= b),
        I::F64Eq => relop!(f64, |a: &f64, b: &f64| a == b),
        I::F64Ne => relop!(f64, |a: &f64, b: &f64| a != b),
        I::F64Lt => relop!(f64, |a: &f64, b: &f64| a < b),
        I::F64Gt => relop!(f64, |a: &f64, b: &f64| a > b),
        I::F64Le => relop!(f64, |a: &f64, b: &f64| a <= b),
        I::F64Ge => relop!(f64, |a: &f64, b: &f64| a >= b),

        I::I32Clz => unop!(u32, from_u32, |a: u32| a.leading_zeros()),
        I::I32Ctz => unop!(u32, from_u32, |a: u32| a.trailing_zeros()),
        I::I32Popcnt => unop!(u32, from_u32, |a: u32| a.count_ones()),
        I::I32Add => binop!(i32, i32::wrapping_add),
        I::I32Sub => binop!(i32, i32::wrapping_sub),
        I::I32Mul => binop!(i32, i32::wrapping_mul),
        I::I32DivS => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            if a == i32::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            stack.push(Slot::from_i32(a.wrapping_div(b)));
        }
        I::I32DivU => {
            let b = pop(stack).u32();
            let a = pop(stack).u32();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_u32(a / b));
        }
        I::I32RemS => {
            let b = pop(stack).i32();
            let a = pop(stack).i32();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_i32(a.wrapping_rem(b)));
        }
        I::I32RemU => {
            let b = pop(stack).u32();
            let a = pop(stack).u32();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_u32(a % b));
        }
        I::I32And => binop!(u32, |a, b| a & b),
        I::I32Or => binop!(u32, |a, b| a | b),
        I::I32Xor => binop!(u32, |a, b| a ^ b),
        I::I32Shl => binop!(u32, |a: u32, b: u32| a.wrapping_shl(b)),
        I::I32ShrS => {
            let b = pop(stack).u32();
            let a = pop(stack).i32();
            stack.push(Slot::from_i32(a.wrapping_shr(b)));
        }
        I::I32ShrU => binop!(u32, |a: u32, b: u32| a.wrapping_shr(b)),
        I::I32Rotl => binop!(u32, |a: u32, b: u32| a.rotate_left(b & 31)),
        I::I32Rotr => binop!(u32, |a: u32, b: u32| a.rotate_right(b & 31)),
        I::I64Clz => unop!(u64, from_u64, |a: u64| a.leading_zeros() as u64),
        I::I64Ctz => unop!(u64, from_u64, |a: u64| a.trailing_zeros() as u64),
        I::I64Popcnt => unop!(u64, from_u64, |a: u64| a.count_ones() as u64),
        I::I64Add => binop!(i64, i64::wrapping_add),
        I::I64Sub => binop!(i64, i64::wrapping_sub),
        I::I64Mul => binop!(i64, i64::wrapping_mul),
        I::I64DivS => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            if a == i64::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            stack.push(Slot::from_i64(a.wrapping_div(b)));
        }
        I::I64DivU => {
            let b = pop(stack).u64();
            let a = pop(stack).u64();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_u64(a / b));
        }
        I::I64RemS => {
            let b = pop(stack).i64();
            let a = pop(stack).i64();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_i64(a.wrapping_rem(b)));
        }
        I::I64RemU => {
            let b = pop(stack).u64();
            let a = pop(stack).u64();
            if b == 0 {
                return Err(Trap::IntegerDivideByZero);
            }
            stack.push(Slot::from_u64(a % b));
        }
        I::I64And => binop!(u64, |a, b| a & b),
        I::I64Or => binop!(u64, |a, b| a | b),
        I::I64Xor => binop!(u64, |a, b| a ^ b),
        I::I64Shl => binop!(u64, |a: u64, b: u64| a.wrapping_shl(b as u32)),
        I::I64ShrS => {
            let b = pop(stack).u64();
            let a = pop(stack).i64();
            stack.push(Slot::from_i64(a.wrapping_shr(b as u32)));
        }
        I::I64ShrU => binop!(u64, |a: u64, b: u64| a.wrapping_shr(b as u32)),
        I::I64Rotl => binop!(u64, |a: u64, b: u64| a.rotate_left((b & 63) as u32)),
        I::I64Rotr => binop!(u64, |a: u64, b: u64| a.rotate_right((b & 63) as u32)),

        I::F32Abs => unop!(f32, from_f32, f32::abs),
        I::F32Neg => unop!(f32, from_f32, |a: f32| -a),
        I::F32Ceil => unop!(f32, from_f32, f32::ceil),
        I::F32Floor => unop!(f32, from_f32, f32::floor),
        I::F32Trunc => unop!(f32, from_f32, f32::trunc),
        I::F32Nearest => unop!(f32, from_f32, nearest_f32),
        I::F32Sqrt => unop!(f32, from_f32, f32::sqrt),
        I::F32Add => binop!(f32, |a, b| a + b),
        I::F32Sub => binop!(f32, |a, b| a - b),
        I::F32Mul => binop!(f32, |a, b| a * b),
        I::F32Div => binop!(f32, |a, b| a / b),
        I::F32Min => binop!(f32, wasm_min_f32),
        I::F32Max => binop!(f32, wasm_max_f32),
        I::F32Copysign => binop!(f32, f32::copysign),
        I::F64Abs => unop!(f64, from_f64, f64::abs),
        I::F64Neg => unop!(f64, from_f64, |a: f64| -a),
        I::F64Ceil => unop!(f64, from_f64, f64::ceil),
        I::F64Floor => unop!(f64, from_f64, f64::floor),
        I::F64Trunc => unop!(f64, from_f64, f64::trunc),
        I::F64Nearest => unop!(f64, from_f64, nearest_f64),
        I::F64Sqrt => unop!(f64, from_f64, f64::sqrt),
        I::F64Add => binop!(f64, |a, b| a + b),
        I::F64Sub => binop!(f64, |a, b| a - b),
        I::F64Mul => binop!(f64, |a, b| a * b),
        I::F64Div => binop!(f64, |a, b| a / b),
        I::F64Min => binop!(f64, wasm_min_f64),
        I::F64Max => binop!(f64, wasm_max_f64),
        I::F64Copysign => binop!(f64, f64::copysign),

        I::I32WrapI64 => unop!(i64, from_i32, |a: i64| a as i32),
        I::I32TruncF32S => {
            let a = pop(stack).f32();
            stack.push(Slot::from_i32(trunc::i32_from_f32(a)?));
        }
        I::I32TruncF32U => {
            let a = pop(stack).f32();
            stack.push(Slot::from_u32(trunc::u32_from_f32(a)?));
        }
        I::I32TruncF64S => {
            let a = pop(stack).f64();
            stack.push(Slot::from_i32(trunc::i32_from_f64(a)?));
        }
        I::I32TruncF64U => {
            let a = pop(stack).f64();
            stack.push(Slot::from_u32(trunc::u32_from_f64(a)?));
        }
        I::I64ExtendI32S => unop!(i32, from_i64, |a: i32| a as i64),
        I::I64ExtendI32U => unop!(u32, from_u64, |a: u32| a as u64),
        I::I64TruncF32S => {
            let a = pop(stack).f32();
            stack.push(Slot::from_i64(trunc::i64_from_f32(a)?));
        }
        I::I64TruncF32U => {
            let a = pop(stack).f32();
            stack.push(Slot::from_u64(trunc::u64_from_f32(a)?));
        }
        I::I64TruncF64S => {
            let a = pop(stack).f64();
            stack.push(Slot::from_i64(trunc::i64_from_f64(a)?));
        }
        I::I64TruncF64U => {
            let a = pop(stack).f64();
            stack.push(Slot::from_u64(trunc::u64_from_f64(a)?));
        }
        I::F32ConvertI32S => unop!(i32, from_f32, |a: i32| a as f32),
        I::F32ConvertI32U => unop!(u32, from_f32, |a: u32| a as f32),
        I::F32ConvertI64S => unop!(i64, from_f32, |a: i64| a as f32),
        I::F32ConvertI64U => unop!(u64, from_f32, |a: u64| a as f32),
        I::F32DemoteF64 => unop!(f64, from_f32, |a: f64| a as f32),
        I::F64ConvertI32S => unop!(i32, from_f64, |a: i32| a as f64),
        I::F64ConvertI32U => unop!(u32, from_f64, |a: u32| a as f64),
        I::F64ConvertI64S => unop!(i64, from_f64, |a: i64| a as f64),
        I::F64ConvertI64U => unop!(u64, from_f64, |a: u64| a as f64),
        I::F64PromoteF32 => unop!(f32, from_f64, |a: f32| a as f64),
        I::I32ReinterpretF32 => {} // bit pattern already in the slot
        I::I64ReinterpretF64 => {}
        I::F32ReinterpretI32 => {}
        I::F64ReinterpretI64 => {}

        // Control flow and calls are tier-specific.
        I::Unreachable
        | I::Block(_)
        | I::Loop(_)
        | I::If(_)
        | I::Else
        | I::End
        | I::Br(_)
        | I::BrIf(_)
        | I::BrTable(_)
        | I::Return
        | I::Call(_)
        | I::CallIndirect { .. } => return Ok(Simple::NotSimple),
    }
    Ok(Simple::Done)
}

/// Wasm `min`: NaN-propagating, -0 < +0.
pub(crate) fn wasm_min_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_max_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemArg;
    use crate::types::Limits;

    fn run1(i: Instruction, inputs: &[Slot]) -> Result<Slot, Trap> {
        let mut stack = inputs.to_vec();
        let mut mem = None;
        exec_simple(&i, &mut stack, &mut [], &mut [], &mut mem)?;
        Ok(stack.pop().unwrap())
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(
            run1(Instruction::I32Add, &[Slot::from_i32(2), Slot::from_i32(3)]).unwrap().i32(),
            5
        );
        assert_eq!(
            run1(Instruction::I32Sub, &[Slot::from_i32(2), Slot::from_i32(3)]).unwrap().i32(),
            -1
        );
        assert_eq!(
            run1(Instruction::I32Mul, &[Slot::from_i32(i32::MAX), Slot::from_i32(2)])
                .unwrap()
                .i32(),
            -2,
            "wrapping multiply"
        );
    }

    #[test]
    fn division_traps() {
        assert_eq!(
            run1(Instruction::I32DivS, &[Slot::from_i32(1), Slot::from_i32(0)]),
            Err(Trap::IntegerDivideByZero)
        );
        assert_eq!(
            run1(Instruction::I32DivS, &[Slot::from_i32(i32::MIN), Slot::from_i32(-1)]),
            Err(Trap::IntegerOverflow)
        );
        assert_eq!(
            run1(Instruction::I32RemS, &[Slot::from_i32(i32::MIN), Slot::from_i32(-1)])
                .unwrap()
                .i32(),
            0,
            "rem of MIN/-1 is 0, not a trap"
        );
        assert_eq!(
            run1(Instruction::I64DivU, &[Slot::from_u64(7), Slot::from_u64(2)]).unwrap().u64(),
            3
        );
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(
            run1(Instruction::I32Shl, &[Slot::from_u32(1), Slot::from_u32(33)]).unwrap().u32(),
            2,
            "shift count is modulo 32"
        );
        assert_eq!(
            run1(Instruction::I32ShrS, &[Slot::from_i32(-8), Slot::from_u32(1)]).unwrap().i32(),
            -4
        );
    }

    #[test]
    fn float_min_max_semantics() {
        let r = run1(Instruction::F32Min, &[Slot::from_f32(f32::NAN), Slot::from_f32(1.0)])
            .unwrap()
            .f32();
        assert!(r.is_nan());
        let r =
            run1(Instruction::F64Min, &[Slot::from_f64(-0.0), Slot::from_f64(0.0)]).unwrap().f64();
        assert!(r.is_sign_negative());
        let r =
            run1(Instruction::F64Max, &[Slot::from_f64(-0.0), Slot::from_f64(0.0)]).unwrap().f64();
        assert!(r.is_sign_positive());
    }

    #[test]
    fn select_picks_by_condition() {
        let mut stack = vec![Slot::from_i32(10), Slot::from_i32(20), Slot::from_i32(1)];
        exec_simple(&Instruction::Select, &mut stack, &mut [], &mut [], &mut None).unwrap();
        assert_eq!(stack.pop().unwrap().i32(), 10);
    }

    #[test]
    fn locals_and_globals() {
        let mut stack = vec![];
        let mut locals = [Slot::from_i32(5)];
        let mut globals = [Slot::from_i64(9)];
        exec_simple(&Instruction::LocalGet(0), &mut stack, &mut locals, &mut globals, &mut None)
            .unwrap();
        assert_eq!(stack.last().unwrap().i32(), 5);
        exec_simple(&Instruction::LocalTee(0), &mut stack, &mut locals, &mut globals, &mut None)
            .unwrap();
        exec_simple(&Instruction::GlobalSet(0), &mut stack, &mut locals, &mut globals, &mut None)
            .unwrap();
        assert_eq!(globals[0].i64(), 5);
        assert!(stack.is_empty());
    }

    #[test]
    fn memory_load_store_subwidth() {
        let mut mem = Some(LinearMemory::new(Limits::new(1, None)));
        let mut stack = vec![Slot::from_u32(16), Slot::from_i32(-1)];
        exec_simple(
            &Instruction::I32Store8(MemArg::default()),
            &mut stack,
            &mut [],
            &mut [],
            &mut mem,
        )
        .unwrap();
        let mut stack = vec![Slot::from_u32(16)];
        exec_simple(
            &Instruction::I32Load8S(MemArg::default()),
            &mut stack,
            &mut [],
            &mut [],
            &mut mem,
        )
        .unwrap();
        assert_eq!(stack.pop().unwrap().i32(), -1);
        let mut stack = vec![Slot::from_u32(16)];
        exec_simple(
            &Instruction::I32Load8U(MemArg::default()),
            &mut stack,
            &mut [],
            &mut [],
            &mut mem,
        )
        .unwrap();
        assert_eq!(stack.pop().unwrap().i32(), 255);
    }

    #[test]
    fn conversions() {
        assert_eq!(
            run1(Instruction::I32WrapI64, &[Slot::from_i64(0x1_0000_0005)]).unwrap().i32(),
            5
        );
        assert_eq!(run1(Instruction::I64ExtendI32S, &[Slot::from_i32(-1)]).unwrap().i64(), -1);
        assert_eq!(
            run1(Instruction::I64ExtendI32U, &[Slot::from_i32(-1)]).unwrap().u64(),
            0xffff_ffff
        );
        assert_eq!(run1(Instruction::I32TruncF64S, &[Slot::from_f64(-3.9)]).unwrap().i32(), -3);
        assert_eq!(
            run1(Instruction::I32TruncF64S, &[Slot::from_f64(f64::NAN)]),
            Err(Trap::InvalidConversionToInteger)
        );
        assert_eq!(
            run1(Instruction::F64ConvertI64U, &[Slot::from_u64(u64::MAX)]).unwrap().f64(),
            u64::MAX as f64
        );
    }

    #[test]
    fn reinterpret_is_identity_on_slots() {
        let s = Slot::from_f32(1.5);
        let r = run1(Instruction::I32ReinterpretF32, &[s]).unwrap();
        assert_eq!(r.u32(), 1.5f32.to_bits());
    }

    #[test]
    fn control_flow_is_not_simple() {
        let mut stack = vec![];
        let out = exec_simple(&Instruction::Return, &mut stack, &mut [], &mut [], &mut None);
        assert!(matches!(out, Ok(Simple::NotSimple)));
    }

    #[test]
    fn clz_ctz_popcnt() {
        assert_eq!(run1(Instruction::I32Clz, &[Slot::from_u32(1)]).unwrap().u32(), 31);
        assert_eq!(run1(Instruction::I32Ctz, &[Slot::from_u32(8)]).unwrap().u32(), 3);
        assert_eq!(run1(Instruction::I32Popcnt, &[Slot::from_u32(0xff)]).unwrap().u32(), 8);
        assert_eq!(run1(Instruction::I64Clz, &[Slot::from_u64(1)]).unwrap().u64(), 63);
    }
}
