//! WebAssembly type grammar (spec §2.3): value, function, limit, global,
//! table and memory types, plus block types.

use std::fmt;

use crate::error::DecodeError;

/// A value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    I32,
    I64,
    F32,
    F64,
}

impl ValType {
    /// Binary encoding of the type.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Decode from the binary encoding.
    pub fn from_byte(b: u8) -> Result<ValType, DecodeError> {
        match b {
            0x7f => Ok(ValType::I32),
            0x7e => Ok(ValType::I64),
            0x7d => Ok(ValType::F32),
            0x7c => Ok(ValType::F64),
            other => Err(DecodeError::BadValType(other)),
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        write!(f, "{s}")
    }
}

/// A function type: parameters and results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    pub params: Vec<ValType>,
    pub results: Vec<ValType>,
}

impl FuncType {
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        FuncType { params, results }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories and tables (in pages / elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    pub min: u32,
    pub max: Option<u32>,
}

impl Limits {
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Limits { min, max }
    }

    /// Structural validity: `min <= max` when a max exists.
    pub fn is_valid(&self) -> bool {
        self.max.map(|m| self.min <= m).unwrap_or(true)
    }

    /// Does `other` fit within these limits? (import matching)
    pub fn subsumes(&self, other: &Limits) -> bool {
        other.min >= self.min
            && match (self.max, other.max) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => b <= a,
            }
    }
}

/// A global's type: value type and mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    pub value: ValType,
    pub mutable: bool,
}

/// A table type (MVP: funcref only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableType {
    pub limits: Limits,
}

/// A memory type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryType {
    pub limits: Limits,
}

/// A block's type: empty, a single result, or (via the extended encoding)
/// a reference to a function type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    Empty,
    Value(ValType),
    Func(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.byte()).unwrap(), t);
        }
        assert!(ValType::from_byte(0x00).is_err());
    }

    #[test]
    fn functype_display() {
        let ft = FuncType::new(vec![ValType::I32, ValType::I64], vec![ValType::F32]);
        assert_eq!(ft.to_string(), "(i32 i64) -> (f32)");
    }

    #[test]
    fn limits_validity() {
        assert!(Limits::new(1, None).is_valid());
        assert!(Limits::new(1, Some(1)).is_valid());
        assert!(!Limits::new(2, Some(1)).is_valid());
    }

    #[test]
    fn limits_subsumption() {
        let outer = Limits::new(1, Some(10));
        assert!(outer.subsumes(&Limits::new(2, Some(5))));
        assert!(!outer.subsumes(&Limits::new(0, Some(5))), "min below bound");
        assert!(!outer.subsumes(&Limits::new(2, None)), "unbounded max");
        assert!(Limits::new(0, None).subsumes(&Limits::new(5, Some(100))));
    }
}
