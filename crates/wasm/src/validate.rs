//! Module validation (spec §3), using the standard operand-stack /
//! control-stack algorithm from the spec appendix.
//!
//! Every engine profile validates before executing — validation cost is part
//! of the startup model (WAMR validates per container start, which is one of
//! the mechanisms behind the Fig. 9 crossover against crun-Wasmtime's cached
//! compilations).

use crate::error::ValidationError;
use crate::instr::{read_instr, Instruction};
use crate::module::{ConstExpr, ExportDesc, ImportDesc, Module};
use crate::types::{BlockType, FuncType, GlobalType, ValType};

/// Natural alignment exponent for a `2^align` check.
fn natural_align(bytes: u32) -> u32 {
    bytes.trailing_zeros()
}

struct ModuleCtx<'m> {
    module: &'m Module,
    /// Global types in the combined index space.
    globals: Vec<GlobalType>,
    num_tables: u32,
    num_memories: u32,
}

impl<'m> ModuleCtx<'m> {
    fn new(module: &'m Module) -> Self {
        let mut globals = Vec::new();
        for imp in &module.imports {
            if let ImportDesc::Global(g) = imp.desc {
                globals.push(g);
            }
        }
        for g in &module.globals {
            globals.push(g.ty);
        }
        let num_tables = module.num_imported_tables() + module.tables.len() as u32;
        let num_memories = module.num_imported_memories() + module.memories.len() as u32;
        ModuleCtx { module, globals, num_tables, num_memories }
    }

    fn func_type(&self, idx: u32) -> Result<&FuncType, ValidationError> {
        self.module.func_type(idx).ok_or(ValidationError::UnknownFunc(idx))
    }

    fn type_at(&self, idx: u32) -> Result<&FuncType, ValidationError> {
        self.module.types.get(idx as usize).ok_or(ValidationError::UnknownType(idx))
    }

    fn block_signature(
        &self,
        bt: BlockType,
    ) -> Result<(Vec<ValType>, Vec<ValType>), ValidationError> {
        Ok(match bt {
            BlockType::Empty => (vec![], vec![]),
            BlockType::Value(t) => (vec![], vec![t]),
            BlockType::Func(idx) => {
                let ft = self.type_at(idx)?;
                (ft.params.clone(), ft.results.clone())
            }
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Block,
    Loop,
    If,
    Else,
    Func,
}

struct Frame {
    kind: FrameKind,
    start_types: Vec<ValType>,
    end_types: Vec<ValType>,
    /// Operand stack height on entry.
    height: usize,
    /// Set once this frame's tail is unreachable.
    unreachable: bool,
}

impl Frame {
    /// The types a branch to this frame's label expects.
    fn label_types(&self) -> &[ValType] {
        if self.kind == FrameKind::Loop {
            &self.start_types
        } else {
            &self.end_types
        }
    }
}

struct FuncValidator<'m> {
    ctx: &'m ModuleCtx<'m>,
    locals: Vec<ValType>,
    /// Operand stack; `None` is the unknown (polymorphic) type.
    opds: Vec<Option<ValType>>,
    frames: Vec<Frame>,
}

impl<'m> FuncValidator<'m> {
    fn push(&mut self, t: ValType) {
        self.opds.push(Some(t));
    }

    fn push_unknown(&mut self) {
        self.opds.push(None);
    }

    fn pop(&mut self) -> Result<Option<ValType>, ValidationError> {
        let frame = self.frames.last().expect("frame underflow");
        if self.opds.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(ValidationError::TypeMismatch {
                context: "operand stack underflow".into(),
            });
        }
        Ok(self.opds.pop().expect("checked non-empty"))
    }

    fn pop_expect(&mut self, expect: ValType) -> Result<(), ValidationError> {
        match self.pop()? {
            None => Ok(()),
            Some(t) if t == expect => Ok(()),
            Some(t) => Err(ValidationError::TypeMismatch {
                context: format!("expected {expect}, found {t}"),
            }),
        }
    }

    fn pop_expects(&mut self, types: &[ValType]) -> Result<(), ValidationError> {
        for t in types.iter().rev() {
            self.pop_expect(*t)?;
        }
        Ok(())
    }

    fn push_frame(&mut self, kind: FrameKind, start: Vec<ValType>, end: Vec<ValType>) {
        let height = self.opds.len();
        for t in &start {
            self.push(*t);
        }
        self.frames.push(Frame {
            kind,
            start_types: start,
            end_types: end,
            height,
            unreachable: false,
        });
    }

    fn pop_frame(&mut self) -> Result<Frame, ValidationError> {
        let end_types = self.frames.last().expect("frame underflow").end_types.clone();
        self.pop_expects(&end_types)?;
        let frame = self.frames.pop().expect("frame underflow");
        if self.opds.len() != frame.height {
            return Err(ValidationError::UnbalancedStack {
                expected: frame.height,
                actual: self.opds.len(),
            });
        }
        Ok(frame)
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame underflow");
        self.opds.truncate(frame.height);
        frame.unreachable = true;
    }

    fn label(&self, depth: u32) -> Result<&Frame, ValidationError> {
        let n = self.frames.len();
        if depth as usize >= n {
            return Err(ValidationError::UnknownLabel(depth));
        }
        Ok(&self.frames[n - 1 - depth as usize])
    }

    fn local(&self, idx: u32) -> Result<ValType, ValidationError> {
        self.locals.get(idx as usize).copied().ok_or(ValidationError::UnknownLocal(idx))
    }

    fn global(&self, idx: u32) -> Result<GlobalType, ValidationError> {
        self.ctx.globals.get(idx as usize).copied().ok_or(ValidationError::UnknownGlobal(idx))
    }

    fn check_mem(&self) -> Result<(), ValidationError> {
        if self.ctx.num_memories == 0 {
            return Err(ValidationError::UnknownMemory(0));
        }
        Ok(())
    }

    fn check_align(&self, align: u32, access_bytes: u32) -> Result<(), ValidationError> {
        let natural = natural_align(access_bytes);
        if align > natural {
            return Err(ValidationError::BadAlignment { align, natural });
        }
        Ok(())
    }

    fn load(&mut self, align: u32, bytes: u32, result: ValType) -> Result<(), ValidationError> {
        self.check_mem()?;
        self.check_align(align, bytes)?;
        self.pop_expect(ValType::I32)?;
        self.push(result);
        Ok(())
    }

    fn store(&mut self, align: u32, bytes: u32, operand: ValType) -> Result<(), ValidationError> {
        self.check_mem()?;
        self.check_align(align, bytes)?;
        self.pop_expect(operand)?;
        self.pop_expect(ValType::I32)?;
        Ok(())
    }

    fn unop(&mut self, t: ValType) -> Result<(), ValidationError> {
        self.pop_expect(t)?;
        self.push(t);
        Ok(())
    }

    fn binop(&mut self, t: ValType) -> Result<(), ValidationError> {
        self.pop_expect(t)?;
        self.pop_expect(t)?;
        self.push(t);
        Ok(())
    }

    fn testop(&mut self, t: ValType) -> Result<(), ValidationError> {
        self.pop_expect(t)?;
        self.push(ValType::I32);
        Ok(())
    }

    fn relop(&mut self, t: ValType) -> Result<(), ValidationError> {
        self.pop_expect(t)?;
        self.pop_expect(t)?;
        self.push(ValType::I32);
        Ok(())
    }

    fn cvtop(&mut self, from: ValType, to: ValType) -> Result<(), ValidationError> {
        self.pop_expect(from)?;
        self.push(to);
        Ok(())
    }

    fn instr(&mut self, i: &Instruction) -> Result<(), ValidationError> {
        use Instruction as I;
        use ValType::*;
        match i {
            I::Unreachable => self.set_unreachable(),
            I::Nop => {}
            I::Block(bt) => {
                let (params, results) = self.ctx.block_signature(*bt)?;
                self.pop_expects(&params)?;
                self.push_frame(FrameKind::Block, params, results);
            }
            I::Loop(bt) => {
                let (params, results) = self.ctx.block_signature(*bt)?;
                self.pop_expects(&params)?;
                self.push_frame(FrameKind::Loop, params, results);
            }
            I::If(bt) => {
                self.pop_expect(I32)?;
                let (params, results) = self.ctx.block_signature(*bt)?;
                self.pop_expects(&params)?;
                self.push_frame(FrameKind::If, params, results);
            }
            I::Else => {
                let frame = self.pop_frame()?;
                if frame.kind != FrameKind::If {
                    return Err(ValidationError::TypeMismatch {
                        context: "else without if".into(),
                    });
                }
                self.push_frame(FrameKind::Else, frame.start_types, frame.end_types);
            }
            I::End => {
                let frame = self.pop_frame()?;
                // An `if` without `else` must have matching params/results.
                if frame.kind == FrameKind::If && frame.start_types != frame.end_types {
                    return Err(ValidationError::TypeMismatch {
                        context: "if without else must not change types".into(),
                    });
                }
                for t in &frame.end_types {
                    self.push(*t);
                }
            }
            I::Br(depth) => {
                let types = self.label(*depth)?.label_types().to_vec();
                self.pop_expects(&types)?;
                self.set_unreachable();
            }
            I::BrIf(depth) => {
                self.pop_expect(I32)?;
                let types = self.label(*depth)?.label_types().to_vec();
                self.pop_expects(&types)?;
                for t in &types {
                    self.push(*t);
                }
            }
            I::BrTable(data) => {
                self.pop_expect(I32)?;
                let default_types = self.label(data.default)?.label_types().to_vec();
                // In unreachable code the operands are polymorphic, so the
                // spec only requires arity agreement there; exact type
                // equality is required in reachable code.
                let unreachable = self.frames.last().map(|f| f.unreachable).unwrap_or(false);
                for target in &data.targets {
                    let types = self.label(*target)?.label_types();
                    let agrees = if unreachable {
                        types.len() == default_types.len()
                    } else {
                        types == default_types.as_slice()
                    };
                    if !agrees {
                        return Err(ValidationError::TypeMismatch {
                            context: "br_table arms disagree".into(),
                        });
                    }
                }
                self.pop_expects(&default_types)?;
                self.set_unreachable();
            }
            I::Return => {
                let types = self.frames[0].end_types.clone();
                self.pop_expects(&types)?;
                self.set_unreachable();
            }
            I::Call(f) => {
                let ft = self.ctx.func_type(*f)?.clone();
                self.pop_expects(&ft.params)?;
                for r in &ft.results {
                    self.push(*r);
                }
            }
            I::CallIndirect { type_idx, table_idx } => {
                if *table_idx >= self.ctx.num_tables {
                    return Err(ValidationError::UnknownTable(*table_idx));
                }
                let ft = self.ctx.type_at(*type_idx)?.clone();
                self.pop_expect(I32)?;
                self.pop_expects(&ft.params)?;
                for r in &ft.results {
                    self.push(*r);
                }
            }
            I::Drop => {
                self.pop()?;
            }
            I::Select => {
                self.pop_expect(I32)?;
                let a = self.pop()?;
                let b = self.pop()?;
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        return Err(ValidationError::TypeMismatch {
                            context: format!("select operands differ: {x} vs {y}"),
                        })
                    }
                    (Some(x), _) => self.push(x),
                    (None, Some(y)) => self.push(y),
                    (None, None) => self.push_unknown(),
                }
            }
            I::LocalGet(idx) => {
                let t = self.local(*idx)?;
                self.push(t);
            }
            I::LocalSet(idx) => {
                let t = self.local(*idx)?;
                self.pop_expect(t)?;
            }
            I::LocalTee(idx) => {
                let t = self.local(*idx)?;
                self.pop_expect(t)?;
                self.push(t);
            }
            I::GlobalGet(idx) => {
                let g = self.global(*idx)?;
                self.push(g.value);
            }
            I::GlobalSet(idx) => {
                let g = self.global(*idx)?;
                if !g.mutable {
                    return Err(ValidationError::ImmutableGlobal(*idx));
                }
                self.pop_expect(g.value)?;
            }
            I::I32Load(a) => self.load(a.align, 4, I32)?,
            I::I64Load(a) => self.load(a.align, 8, I64)?,
            I::F32Load(a) => self.load(a.align, 4, F32)?,
            I::F64Load(a) => self.load(a.align, 8, F64)?,
            I::I32Load8S(a) | I::I32Load8U(a) => self.load(a.align, 1, I32)?,
            I::I32Load16S(a) | I::I32Load16U(a) => self.load(a.align, 2, I32)?,
            I::I64Load8S(a) | I::I64Load8U(a) => self.load(a.align, 1, I64)?,
            I::I64Load16S(a) | I::I64Load16U(a) => self.load(a.align, 2, I64)?,
            I::I64Load32S(a) | I::I64Load32U(a) => self.load(a.align, 4, I64)?,
            I::I32Store(a) => self.store(a.align, 4, I32)?,
            I::I64Store(a) => self.store(a.align, 8, I64)?,
            I::F32Store(a) => self.store(a.align, 4, F32)?,
            I::F64Store(a) => self.store(a.align, 8, F64)?,
            I::I32Store8(a) => self.store(a.align, 1, I32)?,
            I::I32Store16(a) => self.store(a.align, 2, I32)?,
            I::I64Store8(a) => self.store(a.align, 1, I64)?,
            I::I64Store16(a) => self.store(a.align, 2, I64)?,
            I::I64Store32(a) => self.store(a.align, 4, I64)?,
            I::MemorySize => {
                self.check_mem()?;
                self.push(I32);
            }
            I::MemoryGrow => {
                self.check_mem()?;
                self.pop_expect(I32)?;
                self.push(I32);
            }
            I::I32Const(_) => self.push(I32),
            I::I64Const(_) => self.push(I64),
            I::F32Const(_) => self.push(F32),
            I::F64Const(_) => self.push(F64),
            I::I32Eqz => self.testop(I32)?,
            I::I64Eqz => self.testop(I64)?,
            I::I32Eq
            | I::I32Ne
            | I::I32LtS
            | I::I32LtU
            | I::I32GtS
            | I::I32GtU
            | I::I32LeS
            | I::I32LeU
            | I::I32GeS
            | I::I32GeU => self.relop(I32)?,
            I::I64Eq
            | I::I64Ne
            | I::I64LtS
            | I::I64LtU
            | I::I64GtS
            | I::I64GtU
            | I::I64LeS
            | I::I64LeU
            | I::I64GeS
            | I::I64GeU => self.relop(I64)?,
            I::F32Eq | I::F32Ne | I::F32Lt | I::F32Gt | I::F32Le | I::F32Ge => self.relop(F32)?,
            I::F64Eq | I::F64Ne | I::F64Lt | I::F64Gt | I::F64Le | I::F64Ge => self.relop(F64)?,
            I::I32Clz | I::I32Ctz | I::I32Popcnt => self.unop(I32)?,
            I::I64Clz | I::I64Ctz | I::I64Popcnt => self.unop(I64)?,
            I::I32Add
            | I::I32Sub
            | I::I32Mul
            | I::I32DivS
            | I::I32DivU
            | I::I32RemS
            | I::I32RemU
            | I::I32And
            | I::I32Or
            | I::I32Xor
            | I::I32Shl
            | I::I32ShrS
            | I::I32ShrU
            | I::I32Rotl
            | I::I32Rotr => self.binop(I32)?,
            I::I64Add
            | I::I64Sub
            | I::I64Mul
            | I::I64DivS
            | I::I64DivU
            | I::I64RemS
            | I::I64RemU
            | I::I64And
            | I::I64Or
            | I::I64Xor
            | I::I64Shl
            | I::I64ShrS
            | I::I64ShrU
            | I::I64Rotl
            | I::I64Rotr => self.binop(I64)?,
            I::F32Abs
            | I::F32Neg
            | I::F32Ceil
            | I::F32Floor
            | I::F32Trunc
            | I::F32Nearest
            | I::F32Sqrt => self.unop(F32)?,
            I::F64Abs
            | I::F64Neg
            | I::F64Ceil
            | I::F64Floor
            | I::F64Trunc
            | I::F64Nearest
            | I::F64Sqrt => self.unop(F64)?,
            I::F32Add
            | I::F32Sub
            | I::F32Mul
            | I::F32Div
            | I::F32Min
            | I::F32Max
            | I::F32Copysign => self.binop(F32)?,
            I::F64Add
            | I::F64Sub
            | I::F64Mul
            | I::F64Div
            | I::F64Min
            | I::F64Max
            | I::F64Copysign => self.binop(F64)?,
            I::I32WrapI64 => self.cvtop(I64, I32)?,
            I::I32TruncF32S | I::I32TruncF32U => self.cvtop(F32, I32)?,
            I::I32TruncF64S | I::I32TruncF64U => self.cvtop(F64, I32)?,
            I::I64ExtendI32S | I::I64ExtendI32U => self.cvtop(I32, I64)?,
            I::I64TruncF32S | I::I64TruncF32U => self.cvtop(F32, I64)?,
            I::I64TruncF64S | I::I64TruncF64U => self.cvtop(F64, I64)?,
            I::F32ConvertI32S | I::F32ConvertI32U => self.cvtop(I32, F32)?,
            I::F32ConvertI64S | I::F32ConvertI64U => self.cvtop(I64, F32)?,
            I::F32DemoteF64 => self.cvtop(F64, F32)?,
            I::F64ConvertI32S | I::F64ConvertI32U => self.cvtop(I32, F64)?,
            I::F64ConvertI64S | I::F64ConvertI64U => self.cvtop(I64, F64)?,
            I::F64PromoteF32 => self.cvtop(F32, F64)?,
            I::I32ReinterpretF32 => self.cvtop(F32, I32)?,
            I::I64ReinterpretF64 => self.cvtop(F64, I64)?,
            I::F32ReinterpretI32 => self.cvtop(I32, F32)?,
            I::F64ReinterpretI64 => self.cvtop(I64, F64)?,
        }
        Ok(())
    }
}

fn validate_const_expr(
    ctx: &ModuleCtx<'_>,
    expr: &ConstExpr,
    expected: ValType,
) -> Result<(), ValidationError> {
    let actual = match expr {
        ConstExpr::I32(_) => ValType::I32,
        ConstExpr::I64(_) => ValType::I64,
        ConstExpr::F32(_) => ValType::F32,
        ConstExpr::F64(_) => ValType::F64,
        ConstExpr::GlobalGet(idx) => {
            let imported = ctx.module.num_imported_globals();
            if *idx >= imported {
                return Err(ValidationError::NotConstant);
            }
            let g = ctx.globals[*idx as usize];
            if g.mutable {
                return Err(ValidationError::NotConstant);
            }
            g.value
        }
    };
    if actual != expected {
        return Err(ValidationError::TypeMismatch {
            context: format!("const expression: expected {expected}, found {actual}"),
        });
    }
    Ok(())
}

/// Validate a whole module.
pub fn validate_module(module: &Module) -> Result<(), ValidationError> {
    let ctx = ModuleCtx::new(module);

    // Types referenced by functions and imports exist.
    for t in &module.funcs {
        ctx.type_at(*t)?;
    }
    for imp in &module.imports {
        match &imp.desc {
            ImportDesc::Func(t) => {
                ctx.type_at(*t)?;
            }
            ImportDesc::Table(t) => {
                if !t.limits.is_valid() {
                    return Err(ValidationError::BadLimits);
                }
            }
            ImportDesc::Memory(m) => {
                if !m.limits.is_valid() || m.limits.min > 65536 || m.limits.max.unwrap_or(0) > 65536
                {
                    return Err(ValidationError::BadLimits);
                }
            }
            ImportDesc::Global(_) => {}
        }
    }

    // MVP: at most one table, one memory.
    if ctx.num_tables > 1 {
        return Err(ValidationError::MultipleDeclared("table"));
    }
    if ctx.num_memories > 1 {
        return Err(ValidationError::MultipleDeclared("memory"));
    }
    for t in &module.tables {
        if !t.limits.is_valid() {
            return Err(ValidationError::BadLimits);
        }
    }
    for m in &module.memories {
        if !m.limits.is_valid() || m.limits.min > 65536 || m.limits.max.unwrap_or(0) > 65536 {
            return Err(ValidationError::BadLimits);
        }
    }

    // Globals.
    for g in &module.globals {
        validate_const_expr(&ctx, &g.init, g.ty.value)?;
    }

    // Exports: valid indices, unique names.
    let mut seen = std::collections::BTreeSet::new();
    for e in &module.exports {
        if !seen.insert(e.name.as_str()) {
            return Err(ValidationError::DuplicateExport(e.name.clone()));
        }
        match e.desc {
            ExportDesc::Func(i) => {
                ctx.func_type(i)?;
            }
            ExportDesc::Table(i) => {
                if i >= ctx.num_tables {
                    return Err(ValidationError::UnknownTable(i));
                }
            }
            ExportDesc::Memory(i) => {
                if i >= ctx.num_memories {
                    return Err(ValidationError::UnknownMemory(i));
                }
            }
            ExportDesc::Global(i) => {
                if i as usize >= ctx.globals.len() {
                    return Err(ValidationError::UnknownGlobal(i));
                }
            }
        }
    }

    // Start function.
    if let Some(start) = module.start {
        let ft = ctx.func_type(start)?;
        if !ft.params.is_empty() || !ft.results.is_empty() {
            return Err(ValidationError::BadStartSignature);
        }
    }

    // Element segments.
    for e in &module.elements {
        if e.table >= ctx.num_tables {
            return Err(ValidationError::UnknownTable(e.table));
        }
        validate_const_expr(&ctx, &e.offset, ValType::I32)?;
        for f in &e.funcs {
            ctx.func_type(*f)?;
        }
    }

    // Data segments.
    for d in &module.data {
        if d.memory >= ctx.num_memories {
            return Err(ValidationError::UnknownMemory(d.memory));
        }
        validate_const_expr(&ctx, &d.offset, ValType::I32)?;
    }

    // Function bodies.
    let imported = module.num_imported_funcs();
    for (i, body) in module.bodies.iter().enumerate() {
        let func_idx = imported + i as u32;
        let ft = ctx.func_type(func_idx)?.clone();
        let mut locals = ft.params.clone();
        locals.extend(body.expand_locals());
        let mut v = FuncValidator { ctx: &ctx, locals, opds: Vec::new(), frames: Vec::new() };
        v.push_frame(FrameKind::Func, vec![], ft.results.clone());
        // The implicit function frame has no stack-visible params.
        v.opds.clear();
        v.frames[0].height = 0;

        let code = &body.code;
        let mut pos = 0usize;
        while pos < code.len() {
            let (instr, n) = read_instr(&code[pos..]).map_err(|e| {
                ValidationError::TypeMismatch { context: format!("decode error in body: {e}") }
            })?;
            pos += n;
            let done_frames_before = v.frames.len();
            v.instr(&instr)?;
            if done_frames_before == 1 && v.frames.is_empty() {
                // The function's closing `end` was consumed.
                if pos != code.len() {
                    return Err(ValidationError::TypeMismatch {
                        context: "trailing bytes after function end".into(),
                    });
                }
                break;
            }
        }
        if !v.frames.is_empty() {
            return Err(ValidationError::TypeMismatch {
                context: "function body missing final end".into(),
            });
        }
        // Results remain on the stack.
        if v.opds.len() != ft.results.len() {
            return Err(ValidationError::UnbalancedStack {
                expected: ft.results.len(),
                actual: v.opds.len(),
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{BlockType, FuncType};

    fn ft(params: Vec<ValType>, results: Vec<ValType>) -> FuncType {
        FuncType::new(params, results)
    }

    #[test]
    fn valid_add_function() {
        let mut b = ModuleBuilder::new();
        let add = b.func(ft(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).local_get(1).op(Instruction::I32Add);
        });
        b.export_func("add", add);
        validate_module(&b.build()).unwrap();
    }

    #[test]
    fn stack_underflow_rejected() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            f.op(Instruction::I32Add); // nothing on the stack
        });
        assert!(matches!(validate_module(&b.build()), Err(ValidationError::TypeMismatch { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            f.i64_const(1).i64_const(2).op(Instruction::I32Add);
        });
        assert!(validate_module(&b.build()).is_err());
    }

    #[test]
    fn unbalanced_result_rejected() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![]), |f| {
            f.i32_const(1); // leaves a value behind
        });
        assert!(validate_module(&b.build()).is_err());
    }

    #[test]
    fn branch_depths_checked() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![]), |f| {
            f.br(5);
        });
        assert_eq!(validate_module(&b.build()), Err(ValidationError::UnknownLabel(5)));
    }

    #[test]
    fn unreachable_is_polymorphic() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            // After unreachable, anything type-checks.
            f.op(Instruction::Unreachable).op(Instruction::I32Add);
        });
        validate_module(&b.build()).unwrap();
    }

    #[test]
    fn if_without_else_must_be_balanced() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0)
                .op(Instruction::If(BlockType::Value(ValType::I32)))
                .i32_const(1)
                .op(Instruction::End);
        });
        assert!(validate_module(&b.build()).is_err());
    }

    #[test]
    fn valid_loop_with_branch() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(Instruction::I32Eqz).br_if(1);
                    f.local_get(acc).local_get(0).op(Instruction::I32Add).local_set(acc);
                    f.local_get(0).i32_const(1).op(Instruction::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(acc);
        });
        validate_module(&b.build()).unwrap();
    }

    #[test]
    fn immutable_global_set_rejected() {
        let mut b = ModuleBuilder::new();
        let g = b.global(ValType::I32, false, crate::module::ConstExpr::I32(0));
        b.func(ft(vec![], vec![]), |f| {
            f.i32_const(1).global_set(g);
        });
        assert_eq!(validate_module(&b.build()), Err(ValidationError::ImmutableGlobal(0)));
    }

    #[test]
    fn bad_alignment_rejected() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            f.i32_const(0).op(Instruction::I32Load(crate::instr::MemArg {
                align: 3, // 2^3 = 8 > natural 4
                offset: 0,
            }));
        });
        assert!(matches!(validate_module(&b.build()), Err(ValidationError::BadAlignment { .. })));
    }

    #[test]
    fn memory_ops_require_memory() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            f.op(Instruction::MemorySize);
        });
        assert_eq!(validate_module(&b.build()), Err(ValidationError::UnknownMemory(0)));
    }

    #[test]
    fn duplicate_export_rejected() {
        let mut b = ModuleBuilder::new();
        let f0 = b.func(ft(vec![], vec![]), |_| {});
        b.export_func("x", f0);
        b.export_func("x", f0);
        assert!(matches!(validate_module(&b.build()), Err(ValidationError::DuplicateExport(_))));
    }

    #[test]
    fn start_signature_checked() {
        let mut b = ModuleBuilder::new();
        let f0 = b.func(ft(vec![ValType::I32], vec![]), |f| {
            f.local_get(0).drop_();
        });
        b.start(f0);
        assert_eq!(validate_module(&b.build()), Err(ValidationError::BadStartSignature));
    }

    #[test]
    fn select_type_agreement() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![], vec![ValType::I32]), |f| {
            f.i32_const(1).f64_const(2.0).i32_const(0).op(Instruction::Select);
        });
        assert!(validate_module(&b.build()).is_err());
    }

    #[test]
    fn br_table_arms_must_agree() {
        let mut b = ModuleBuilder::new();
        b.func(ft(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                f.block(BlockType::Empty, |f| {
                    f.i32_const(1).local_get(0).br_table(vec![0], 1);
                });
                f.i32_const(2);
            });
        });
        // Arm 0 expects [], default arm 1 expects [i32] — mismatch.
        assert!(validate_module(&b.build()).is_err());
    }

    #[test]
    fn call_signature_enforced() {
        let mut b = ModuleBuilder::new();
        let callee = b.func(ft(vec![ValType::I64], vec![]), |f| {
            f.local_get(0).drop_();
        });
        b.func(ft(vec![], vec![]), |f| {
            f.i32_const(0).call(callee); // wrong argument type
        });
        assert!(validate_module(&b.build()).is_err());
    }
}
