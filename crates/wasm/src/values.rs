//! Runtime values, untyped stack slots, and traps.

use std::fmt;

use crate::types::ValType;

/// A typed WebAssembly value (API boundary representation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Value {
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// The type's zero value.
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Raw 64-bit representation (used by the untyped operand stack).
    pub fn to_slot(self) -> Slot {
        match self {
            Value::I32(v) => Slot(v as u32 as u64),
            Value::I64(v) => Slot(v as u64),
            Value::F32(v) => Slot(v.to_bits() as u64),
            Value::F64(v) => Slot(v.to_bits()),
        }
    }

    /// Reconstruct a typed value from a raw slot.
    pub fn from_slot(slot: Slot, ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(slot.0 as u32 as i32),
            ValType::I64 => Value::I64(slot.0 as i64),
            ValType::F32 => Value::F32(f32::from_bits(slot.0 as u32)),
            ValType::F64 => Value::F64(f64::from_bits(slot.0)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}:i32"),
            Value::I64(v) => write!(f, "{v}:i64"),
            Value::F32(v) => write!(f, "{v}:f32"),
            Value::F64(v) => write!(f, "{v}:f64"),
        }
    }
}

/// An untyped 64-bit stack slot; validation guarantees well-typed use.
/// This is how WAMR's interpreter represents its operand stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Slot(pub u64);

impl Slot {
    #[inline]
    pub fn i32(self) -> i32 {
        self.0 as u32 as i32
    }

    #[inline]
    pub fn u32(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    pub fn i64(self) -> i64 {
        self.0 as i64
    }

    #[inline]
    pub fn u64(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    #[inline]
    pub fn f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    #[inline]
    pub fn from_i32(v: i32) -> Slot {
        Slot(v as u32 as u64)
    }

    #[inline]
    pub fn from_u32(v: u32) -> Slot {
        Slot(v as u64)
    }

    #[inline]
    pub fn from_i64(v: i64) -> Slot {
        Slot(v as u64)
    }

    #[inline]
    pub fn from_u64(v: u64) -> Slot {
        Slot(v)
    }

    #[inline]
    pub fn from_f32(v: f32) -> Slot {
        Slot(v.to_bits() as u64)
    }

    #[inline]
    pub fn from_f64(v: f64) -> Slot {
        Slot(v.to_bits())
    }

    #[inline]
    pub fn from_bool(b: bool) -> Slot {
        Slot(b as u64)
    }
}

/// Runtime traps (spec §4.4 "trap").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    Unreachable,
    MemoryOutOfBounds,
    TableOutOfBounds,
    IndirectCallTypeMismatch,
    UninitializedElement,
    IntegerDivideByZero,
    IntegerOverflow,
    InvalidConversionToInteger,
    StackOverflow,
    /// Instruction budget exhausted (engine-imposed fuel limit).
    OutOfFuel,
    /// The engine's epoch deadline passed (watchdog interruption). Unlike
    /// [`Trap::OutOfFuel`] this is an external, asynchronous-style stop:
    /// the guest was healthy but overstayed its wall-clock (epoch) budget.
    Interrupted,
    /// A host function failed (e.g. WASI error).
    HostError(String),
    /// `proc_exit` was called with this code (not an error, but unwinds).
    Exit(i32),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds => write!(f, "out of bounds memory access"),
            Trap::TableOutOfBounds => write!(f, "out of bounds table access"),
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::UninitializedElement => write!(f, "uninitialized table element"),
            Trap::IntegerDivideByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversionToInteger => write!(f, "invalid conversion to integer"),
            Trap::StackOverflow => write!(f, "call stack exhausted"),
            Trap::OutOfFuel => write!(f, "instruction budget exhausted"),
            Trap::Interrupted => write!(f, "epoch deadline reached; guest interrupted"),
            Trap::HostError(s) => write!(f, "host error: {s}"),
            Trap::Exit(code) => write!(f, "program exited with code {code}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Checked float→int truncations (spec: trap on NaN or out-of-range).
pub mod trunc {
    use super::Trap;

    pub fn i32_from_f32(v: f32) -> Result<i32, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        // Exclusive upper bound: 2^31 is exactly representable in f32 while
        // 2^31 - 1 is not (it rounds up to 2^31, which must trap).
        if v >= 2147483648.0_f32 || v < -2147483648.0_f32 {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as i32)
    }

    pub fn u32_from_f32(v: f32) -> Result<u32, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        // 2^32 is exactly representable in f32; 2^32 - 1 is not.
        if v >= 4294967296.0_f32 || v <= -1.0_f32 {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as u32)
    }

    pub fn i32_from_f64(v: f64) -> Result<i32, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        let t = v.trunc();
        if !(-2147483649.0 + 1.0..=2147483647.0).contains(&t) {
            return Err(Trap::IntegerOverflow);
        }
        Ok(t as i32)
    }

    pub fn u32_from_f64(v: f64) -> Result<u32, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        let t = v.trunc();
        if !(0.0..=4294967295.0).contains(&t) {
            return Err(Trap::IntegerOverflow);
        }
        Ok(t as u32)
    }

    pub fn i64_from_f32(v: f32) -> Result<i64, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        // f32 with |v| < 2^63 fits; the boundary value 2^63 itself does not.
        if !(-9223372036854775808.0..9223372036854775808.0).contains(&v) {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as i64)
    }

    pub fn u64_from_f32(v: f32) -> Result<u64, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        if v >= 18446744073709551616.0 || v <= -1.0 {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as u64)
    }

    pub fn i64_from_f64(v: f64) -> Result<i64, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        if !(-9223372036854775808.0..9223372036854775808.0).contains(&v) {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as i64)
    }

    pub fn u64_from_f64(v: f64) -> Result<u64, Trap> {
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInteger);
        }
        if v >= 18446744073709551616.0 || v <= -1.0 {
            return Err(Trap::IntegerOverflow);
        }
        Ok(v.trunc() as u64)
    }
}

/// IEEE-754 `nearest` (round half to even), the Wasm rounding mode.
/// The sign of zero is preserved (`nearest(-0.5)` is `-0.0`).
pub fn nearest_f32(v: f32) -> f32 {
    let r = v.round();
    let r = if (r - v).abs() == 0.5 && r % 2.0 != 0.0 { r - v.signum() } else { r };
    if r == 0.0 {
        0.0_f32.copysign(v)
    } else {
        r
    }
}

/// IEEE-754 `nearest` for f64. The sign of zero is preserved.
pub fn nearest_f64(v: f64) -> f64 {
    let r = v.round();
    let r = if (r - v).abs() == 0.5 && r % 2.0 != 0.0 { r - v.signum() } else { r };
    if r == 0.0 {
        0.0_f64.copysign(v)
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        for v in [Value::I32(-1), Value::I64(i64::MIN), Value::F32(1.5), Value::F64(-0.0)] {
            let back = Value::from_slot(v.to_slot(), v.ty());
            match (v, back) {
                (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ValType::I32), Value::I32(0));
        assert_eq!(Value::zero(ValType::F64), Value::F64(0.0));
    }

    #[test]
    fn trunc_f32_boundaries_trap_exactly() {
        // 2^31 and 2^32 are representable in f32 and must trap; the largest
        // representable values below them must convert.
        assert_eq!(trunc::i32_from_f32(2147483648.0), Err(Trap::IntegerOverflow));
        assert_eq!(trunc::i32_from_f32(2147483520.0), Ok(2147483520));
        assert_eq!(trunc::i32_from_f32(-2147483648.0), Ok(i32::MIN));
        assert_eq!(trunc::u32_from_f32(4294967296.0), Err(Trap::IntegerOverflow));
        assert_eq!(trunc::u32_from_f32(4294967040.0), Ok(4294967040));
    }

    #[test]
    fn trunc_traps() {
        assert_eq!(trunc::i32_from_f32(f32::NAN), Err(Trap::InvalidConversionToInteger));
        assert_eq!(trunc::i32_from_f32(3e9), Err(Trap::IntegerOverflow));
        assert_eq!(trunc::i32_from_f32(-3.7), Ok(-3));
        assert_eq!(trunc::u32_from_f64(-0.5), Ok(0));
        assert_eq!(trunc::u32_from_f64(-1.0), Err(Trap::IntegerOverflow));
        assert_eq!(trunc::i64_from_f64(9.3e18), Err(Trap::IntegerOverflow));
        assert_eq!(trunc::u64_from_f64(1.8e19), Ok(18000000000000000000));
    }

    #[test]
    fn nearest_ties_to_even() {
        assert_eq!(nearest_f64(0.5), 0.0);
        assert_eq!(nearest_f64(1.5), 2.0);
        assert_eq!(nearest_f64(2.5), 2.0);
        assert_eq!(nearest_f64(-0.5), -0.0);
        assert_eq!(nearest_f64(-1.5), -2.0);
        assert_eq!(nearest_f32(3.5), 4.0);
        assert_eq!(nearest_f32(4.5), 4.0);
    }

    #[test]
    fn nan_preserved_through_slots() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let s = Slot::from_f64(nan);
        assert_eq!(s.f64().to_bits(), nan.to_bits());
    }
}
