//! WAT-style text rendering of modules — a debugging aid for inspecting
//! builder output and decoded binaries (`wasm-objdump` stand-in).
//!
//! The output follows the WebAssembly text format closely enough to be read
//! by a human familiar with `.wat`; it is not meant to be reparsed.

use std::fmt::Write as _;

use crate::instr::{read_instr, Instruction};
use crate::module::{ConstExpr, ExportDesc, ImportDesc, Module};
use crate::types::{BlockType, FuncType, ValType};

fn fmt_functype(ft: &FuncType) -> String {
    let mut s = String::new();
    if !ft.params.is_empty() {
        s.push_str(" (param");
        for p in &ft.params {
            let _ = write!(s, " {p}");
        }
        s.push(')');
    }
    if !ft.results.is_empty() {
        s.push_str(" (result");
        for r in &ft.results {
            let _ = write!(s, " {r}");
        }
        s.push(')');
    }
    s
}

fn fmt_blocktype(m: &Module, bt: BlockType) -> String {
    match bt {
        BlockType::Empty => String::new(),
        BlockType::Value(t) => format!(" (result {t})"),
        BlockType::Func(idx) => {
            m.types.get(idx as usize).map(fmt_functype).unwrap_or_else(|| format!(" (type {idx})"))
        }
    }
}

fn fmt_const(e: &ConstExpr) -> String {
    match e {
        ConstExpr::I32(v) => format!("(i32.const {v})"),
        ConstExpr::I64(v) => format!("(i64.const {v})"),
        ConstExpr::F32(v) => format!("(f32.const {v})"),
        ConstExpr::F64(v) => format!("(f64.const {v})"),
        ConstExpr::GlobalGet(i) => format!("(global.get {i})"),
    }
}

/// The flat text-format mnemonic of one instruction.
pub fn mnemonic(m: &Module, i: &Instruction) -> String {
    use Instruction as I;
    match i {
        I::Block(bt) => format!("block{}", fmt_blocktype(m, *bt)),
        I::Loop(bt) => format!("loop{}", fmt_blocktype(m, *bt)),
        I::If(bt) => format!("if{}", fmt_blocktype(m, *bt)),
        I::Else => "else".into(),
        I::End => "end".into(),
        I::Br(d) => format!("br {d}"),
        I::BrIf(d) => format!("br_if {d}"),
        I::BrTable(t) => {
            let mut s = String::from("br_table");
            for x in &t.targets {
                let _ = write!(s, " {x}");
            }
            let _ = write!(s, " {}", t.default);
            s
        }
        I::Call(f) => format!("call {f}"),
        I::CallIndirect { type_idx, .. } => format!("call_indirect (type {type_idx})"),
        I::LocalGet(i) => format!("local.get {i}"),
        I::LocalSet(i) => format!("local.set {i}"),
        I::LocalTee(i) => format!("local.tee {i}"),
        I::GlobalGet(i) => format!("global.get {i}"),
        I::GlobalSet(i) => format!("global.set {i}"),
        I::I32Const(v) => format!("i32.const {v}"),
        I::I64Const(v) => format!("i64.const {v}"),
        I::F32Const(v) => format!("f32.const {v}"),
        I::F64Const(v) => format!("f64.const {v}"),
        I::I32Load(a) => format!("i32.load offset={}", a.offset),
        I::I64Load(a) => format!("i64.load offset={}", a.offset),
        I::F32Load(a) => format!("f32.load offset={}", a.offset),
        I::F64Load(a) => format!("f64.load offset={}", a.offset),
        I::I32Store(a) => format!("i32.store offset={}", a.offset),
        I::I64Store(a) => format!("i64.store offset={}", a.offset),
        I::F32Store(a) => format!("f32.store offset={}", a.offset),
        I::F64Store(a) => format!("f64.store offset={}", a.offset),
        other => {
            // Mechanical conversion of the enum variant covers the numeric
            // instruction space: split CamelCase words, lowercase, join the
            // first word with '.' and the rest with '_' ("I32TruncF64S" →
            // "i32.trunc_f64_s", "MemoryGrow" → "memory.grow").
            let name = format!("{other:?}");
            let name = name.split(['(', ' ', '{']).next().unwrap_or(&name);
            let mut words: Vec<String> = Vec::new();
            for c in name.chars() {
                if c.is_ascii_uppercase() || words.is_empty() {
                    words.push(c.to_ascii_lowercase().to_string());
                } else {
                    words.last_mut().expect("non-empty").push(c);
                }
            }
            // Digits glue to the previous word ("i32"), and a lone trailing
            // letter ("S"/"U") is a sign suffix.
            let mut merged: Vec<String> = Vec::new();
            for w in words {
                match merged.last_mut() {
                    Some(last) if w.chars().all(|c| c.is_ascii_digit()) => last.push_str(&w),
                    _ => merged.push(w),
                }
            }
            match merged.len() {
                0 | 1 => merged.concat(),
                _ => format!("{}.{}", merged[0], merged[1..].join("_")),
            }
        }
    }
}

/// Render a whole module as WAT-style text.
pub fn render(m: &Module) -> String {
    let mut out = String::from("(module\n");
    for (i, t) in m.types.iter().enumerate() {
        let _ = writeln!(out, "  (type (;{i};) (func{}))", fmt_functype(t));
    }
    for imp in &m.imports {
        let desc = match &imp.desc {
            ImportDesc::Func(t) => format!("(func (type {t}))"),
            ImportDesc::Table(t) => format!("(table {} funcref)", t.limits.min),
            ImportDesc::Memory(mt) => format!("(memory {})", mt.limits.min),
            ImportDesc::Global(g) => format!("(global {})", g.value),
        };
        let _ = writeln!(out, "  (import \"{}\" \"{}\" {desc})", imp.module, imp.name);
    }
    for mem in &m.memories {
        match mem.limits.max {
            Some(max) => {
                let _ = writeln!(out, "  (memory {} {max})", mem.limits.min);
            }
            None => {
                let _ = writeln!(out, "  (memory {})", mem.limits.min);
            }
        }
    }
    for t in &m.tables {
        let _ = writeln!(out, "  (table {} funcref)", t.limits.min);
    }
    for (i, g) in m.globals.iter().enumerate() {
        let ty =
            if g.ty.mutable { format!("(mut {})", g.ty.value) } else { g.ty.value.to_string() };
        let _ = writeln!(out, "  (global (;{i};) {ty} {})", fmt_const(&g.init));
    }
    let imported = m.num_imported_funcs();
    for (li, body) in m.bodies.iter().enumerate() {
        let func_idx = imported + li as u32;
        let ft = m.func_type(func_idx).cloned().unwrap_or_default();
        let _ = writeln!(out, "  (func (;{func_idx};){}", fmt_functype(&ft));
        let locals = body.expand_locals();
        if !locals.is_empty() {
            let names: Vec<String> = locals.iter().map(ValType::to_string).collect();
            let _ = writeln!(out, "    (local {})", names.join(" "));
        }
        let mut depth = 2usize;
        let mut pos = 0usize;
        while pos < body.code.len() {
            let Ok((instr, n)) = read_instr(&body.code[pos..]) else { break };
            pos += n;
            if matches!(instr, Instruction::End | Instruction::Else) {
                depth = depth.saturating_sub(1).max(2);
            }
            // The function's final `end` closes the (func ...) form.
            if pos >= body.code.len() && instr == Instruction::End {
                break;
            }
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), mnemonic(m, &instr));
            if matches!(
                instr,
                Instruction::Block(_)
                    | Instruction::Loop(_)
                    | Instruction::If(_)
                    | Instruction::Else
            ) {
                depth += 1;
            }
        }
        out.push_str("  )\n");
    }
    for e in &m.exports {
        let desc = match e.desc {
            ExportDesc::Func(i) => format!("(func {i})"),
            ExportDesc::Table(i) => format!("(table {i})"),
            ExportDesc::Memory(i) => format!("(memory {i})"),
            ExportDesc::Global(i) => format!("(global {i})"),
        };
        let _ = writeln!(out, "  (export \"{}\" {desc})", e.name);
    }
    if let Some(s) = m.start {
        let _ = writeln!(out, "  (start {s})");
    }
    for d in &m.data {
        let _ = writeln!(
            out,
            "  (data {} \"{}\")",
            fmt_const(&d.offset),
            d.bytes
                .iter()
                .map(|b| {
                    if b.is_ascii_graphic() && *b != b'"' && *b != b'\\' {
                        (*b as char).to_string()
                    } else {
                        format!("\\{b:02x}")
                    }
                })
                .collect::<String>()
        );
    }
    out.push_str(")\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{BlockType, FuncType};

    fn sample() -> Module {
        let mut b = ModuleBuilder::new();
        let log = b.import_func("env", "log", FuncType::new(vec![ValType::I32], vec![]));
        let mem = b.memory(1, Some(4));
        b.export_memory("memory", mem);
        b.data(8, &b"hi\"\\x"[..]);
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let acc = f.local(ValType::I64);
            let _ = acc;
            f.block(BlockType::Value(ValType::I32), |f| {
                f.local_get(0).i32_const(1).op(Instruction::I32Add);
                f.local_get(0).call(log);
            });
        });
        b.export_func("inc", f);
        b.build()
    }

    #[test]
    fn renders_structure() {
        let text = render(&sample());
        assert!(text.starts_with("(module\n"));
        assert!(text.contains("(import \"env\" \"log\" (func (type"));
        assert!(text.contains("(memory 1 4)"));
        assert!(text.contains("(export \"inc\" (func 1))"));
        assert!(text.contains("(local i64)"));
        assert!(text.contains("i32.add"));
        assert!(text.contains("local.get 0"));
        assert!(text.contains("call 0"));
        assert!(text.contains("block (result i32)"));
        assert!(text.trim_end().ends_with(')'));
    }

    #[test]
    fn data_segments_escaped() {
        let text = render(&sample());
        assert!(text.contains("(data (i32.const 8) \"hi\\22\\5cx\")"), "{text}");
    }

    #[test]
    fn mnemonics_snake_case() {
        let m = Module::default();
        assert_eq!(mnemonic(&m, &Instruction::I32Add), "i32.add");
        assert_eq!(mnemonic(&m, &Instruction::I64ShrU), "i64.shr_u");
        assert_eq!(mnemonic(&m, &Instruction::F64PromoteF32), "f64.promote_f32");
        assert_eq!(mnemonic(&m, &Instruction::MemoryGrow), "memory.grow");
        assert_eq!(mnemonic(&m, &Instruction::Unreachable), "unreachable");
        assert_eq!(mnemonic(&m, &Instruction::Br(3)), "br 3");
    }

    #[test]
    fn indentation_tracks_nesting() {
        let mut b = ModuleBuilder::new();
        b.func(FuncType::new(vec![], vec![]), |f| {
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.op(Instruction::Nop);
                });
            });
        });
        let text = render(&b.build());
        assert!(text.contains("        nop"), "nop doubly indented:\n{text}");
    }
}
