//! Property-based tests for the Wasm core:
//!
//! * LEB128 round-trips for the full value ranges;
//! * instruction encode/decode round-trips over arbitrary instructions;
//! * module encode→decode round-trips over arbitrary structured modules;
//! * **tier equivalence**: random straight-line and structured programs
//!   produce identical results on the in-place interpreter and the lowered
//!   executor — the property that makes the engine comparison meaningful.

use std::sync::Arc;

use proptest::prelude::*;
use wasm_core::instr::{read_instr, write_instr, BrTableData, MemArg};
use wasm_core::module::{ConstExpr, DataSegment, Export, ExportDesc, FuncBody, Global};
use wasm_core::types::{BlockType, GlobalType, Limits, MemoryType};
use wasm_core::{
    decode_module, encode_module, leb128, validate_module, ExecTier, FuncType, Imports, Instance,
    InstanceConfig, Instruction as I, Module, ModuleBuilder, ValType, Value,
};

proptest! {
    #[test]
    fn leb128_u32_roundtrip(v in any::<u32>()) {
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        let (got, n) = leb128::read_u32(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb128_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        let (got, n) = leb128::read_i64(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb128_rejects_truncation(v in 128u32..) {
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        buf.pop();
        prop_assert!(leb128::read_u32(&buf).is_err());
    }
}

fn arb_instruction() -> impl Strategy<Value = I> {
    prop_oneof![
        Just(I::Unreachable),
        Just(I::Nop),
        Just(I::Drop),
        Just(I::Select),
        Just(I::Return),
        Just(I::End),
        Just(I::MemorySize),
        Just(I::MemoryGrow),
        any::<u32>().prop_map(I::Br),
        any::<u32>().prop_map(I::BrIf),
        any::<u32>().prop_map(I::Call),
        any::<u32>().prop_map(I::LocalGet),
        any::<u32>().prop_map(I::GlobalSet),
        any::<i32>().prop_map(I::I32Const),
        any::<i64>().prop_map(I::I64Const),
        any::<f32>().prop_map(I::F32Const),
        any::<f64>().prop_map(I::F64Const),
        (any::<u32>(), any::<u32>())
            .prop_map(|(align, offset)| I::I32Load(MemArg { align, offset })),
        (any::<u32>(), any::<u32>())
            .prop_map(|(align, offset)| I::I64Store(MemArg { align, offset })),
        (proptest::collection::vec(any::<u32>(), 0..8), any::<u32>()).prop_map(
            |(targets, default)| I::BrTable(Box::new(BrTableData { targets, default }))
        ),
        prop_oneof![
            Just(BlockType::Empty),
            Just(BlockType::Value(ValType::I32)),
            Just(BlockType::Value(ValType::F64)),
        ]
        .prop_map(I::Block),
        Just(I::I32Add),
        Just(I::I64Rotr),
        Just(I::F32Sqrt),
        Just(I::F64Copysign),
        Just(I::I32TruncF64U),
        Just(I::F64ReinterpretI64),
    ]
}

proptest! {
    #[test]
    fn instruction_roundtrip(i in arb_instruction()) {
        let mut buf = Vec::new();
        write_instr(&mut buf, &i);
        let (got, n) = read_instr(&buf).unwrap();
        prop_assert_eq!(n, buf.len());
        // NaN payloads survive bitwise; compare via re-encoding.
        let mut buf2 = Vec::new();
        write_instr(&mut buf2, &got);
        prop_assert_eq!(buf, buf2);
    }
}

fn arb_valtype() -> impl Strategy<Value = ValType> {
    prop_oneof![
        Just(ValType::I32),
        Just(ValType::I64),
        Just(ValType::F32),
        Just(ValType::F64)
    ]
}

prop_compose! {
    fn arb_functype()(
        params in proptest::collection::vec(arb_valtype(), 0..5),
        results in proptest::collection::vec(arb_valtype(), 0..2),
    ) -> FuncType {
        FuncType::new(params, results)
    }
}

/// An arbitrary structurally-plausible module (not necessarily valid — the
/// round-trip property only needs well-formed encoding).
fn arb_module() -> impl Strategy<Value = Module> {
    (
        proptest::collection::vec(arb_functype(), 1..4),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec((any::<u16>(), any::<bool>()), 0..3),
        any::<bool>(),
    )
        .prop_map(|(types, data, globals, with_memory)| {
            let mut m = Module::default();
            let ntypes = types.len() as u32;
            m.types = types;
            // One function per type, with a trivial body.
            for t in 0..ntypes {
                m.funcs.push(t);
                m.bodies.push(FuncBody {
                    locals: vec![(2, ValType::I32)],
                    code: bytes::Bytes::from_static(&[0x00, 0x0b]), // unreachable; end
                });
            }
            if with_memory {
                m.memories.push(MemoryType { limits: Limits::new(1, Some(4)) });
                m.data.push(DataSegment {
                    memory: 0,
                    offset: ConstExpr::I32(0),
                    bytes: bytes::Bytes::from(data),
                });
            }
            for (i, (v, mutable)) in globals.into_iter().enumerate() {
                m.globals.push(Global {
                    ty: GlobalType { value: ValType::I64, mutable },
                    init: ConstExpr::I64(v as i64),
                });
                m.exports.push(Export {
                    name: format!("g{i}"),
                    desc: ExportDesc::Global(i as u32),
                });
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn module_roundtrip(m in arb_module()) {
        let bytes = encode_module(&m);
        let back = decode_module(bytes).unwrap();
        prop_assert_eq!(back, m);
    }
}

/// A random straight-line arithmetic program over two i32 params: a list of
/// (operation, constant) steps folded onto an accumulator.
#[derive(Debug, Clone)]
enum Op {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Xor(i32),
    RotlParam1,
    AddParam0,
    ShrU(u32),
    IfPositiveNegate,
}

fn arb_program() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<i32>().prop_map(Op::Add),
            any::<i32>().prop_map(Op::Sub),
            any::<i32>().prop_map(Op::Mul),
            any::<i32>().prop_map(Op::Xor),
            Just(Op::RotlParam1),
            Just(Op::AddParam0),
            (0u32..31).prop_map(Op::ShrU),
            Just(Op::IfPositiveNegate),
        ],
        1..40,
    )
}

fn build_program_module(prog: &[Op]) -> Module {
    let mut b = ModuleBuilder::new();
    let f = b.func(
        FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]),
        |f| {
            let acc = f.local(ValType::I32);
            f.local_get(0).local_set(acc);
            for op in prog {
                match op {
                    Op::Add(c) => {
                        f.local_get(acc).i32_const(*c).op(I::I32Add).local_set(acc);
                    }
                    Op::Sub(c) => {
                        f.local_get(acc).i32_const(*c).op(I::I32Sub).local_set(acc);
                    }
                    Op::Mul(c) => {
                        f.local_get(acc).i32_const(*c).op(I::I32Mul).local_set(acc);
                    }
                    Op::Xor(c) => {
                        f.local_get(acc).i32_const(*c).op(I::I32Xor).local_set(acc);
                    }
                    Op::RotlParam1 => {
                        f.local_get(acc).local_get(1).op(I::I32Rotl).local_set(acc);
                    }
                    Op::AddParam0 => {
                        f.local_get(acc).local_get(0).op(I::I32Add).local_set(acc);
                    }
                    Op::ShrU(c) => {
                        f.local_get(acc)
                            .i32_const(*c as i32)
                            .op(I::I32ShrU)
                            .local_set(acc);
                    }
                    Op::IfPositiveNegate => {
                        f.local_get(acc).i32_const(0).op(I::I32GtS);
                        f.if_else(
                            BlockType::Empty,
                            |f| {
                                f.i32_const(0).local_get(acc).op(I::I32Sub).local_set(acc);
                            },
                            |_| {},
                        );
                    }
                }
            }
            f.local_get(acc);
        },
    );
    b.export_func("run", f);
    b.build()
}

/// Reference semantics in plain Rust.
fn reference_eval(prog: &[Op], p0: i32, p1: i32) -> i32 {
    let mut acc = p0;
    for op in prog {
        acc = match op {
            Op::Add(c) => acc.wrapping_add(*c),
            Op::Sub(c) => acc.wrapping_sub(*c),
            Op::Mul(c) => acc.wrapping_mul(*c),
            Op::Xor(c) => acc ^ c,
            Op::RotlParam1 => acc.rotate_left(p1 as u32 & 31),
            Op::AddParam0 => acc.wrapping_add(p0),
            Op::ShrU(c) => ((acc as u32) >> c) as i32,
            Op::IfPositiveNegate => {
                if acc > 0 {
                    0i32.wrapping_sub(acc)
                } else {
                    acc
                }
            }
        };
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn tiers_match_each_other_and_the_reference(
        prog in arb_program(),
        p0 in any::<i32>(),
        p1 in any::<i32>(),
    ) {
        let module = Arc::new(build_program_module(&prog));
        validate_module(&module).unwrap();
        let expected = reference_eval(&prog, p0, p1);
        for tier in [ExecTier::InPlace, ExecTier::Lowered] {
            let mut inst = Instance::instantiate(
                Arc::clone(&module),
                Imports::new(),
                InstanceConfig { tier, fuel: Some(1_000_000), ..Default::default() },
            ).unwrap();
            let out = inst.invoke("run", &[Value::I32(p0), Value::I32(p1)]).unwrap();
            prop_assert_eq!(&out[..], &[Value::I32(expected)][..], "{:?}", tier);
        }
    }

    #[test]
    fn encode_decode_of_generated_programs(prog in arb_program()) {
        let module = build_program_module(&prog);
        let bytes = encode_module(&module);
        let back = decode_module(bytes).unwrap();
        prop_assert_eq!(back, module);
    }
}
