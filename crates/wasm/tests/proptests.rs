//! Property-based tests for the Wasm core (on the offline `simkernel::prop`
//! harness):
//!
//! * LEB128 round-trips for the full value ranges;
//! * instruction encode/decode round-trips over arbitrary instructions;
//! * module encode→decode round-trips over arbitrary structured modules;
//! * **tier equivalence**: random straight-line and structured programs
//!   produce identical results on the in-place interpreter and the lowered
//!   executor — the property that makes the engine comparison meaningful.

use std::sync::Arc;

use simkernel::prop::check;
use simkernel::rng::SplitMix64;
use wasm_core::instr::{read_instr, write_instr, BrTableData, MemArg};
use wasm_core::module::{ConstExpr, DataSegment, Export, ExportDesc, FuncBody, Global};
use wasm_core::types::{BlockType, GlobalType, Limits, MemoryType};
use wasm_core::{
    decode_module, encode_module, leb128, validate_module, ExecTier, FuncType, Imports, Instance,
    InstanceConfig, Instruction as I, Module, ModuleBuilder, ValType, Value,
};

#[test]
fn leb128_u32_roundtrip() {
    check("leb128_u32_roundtrip", 256, |g| {
        let v = g.next_u32();
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        let (got, n) = leb128::read_u32(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(n, buf.len());
    });
    // Edge values the uniform stream is unlikely to hit.
    for v in [0u32, 1, 127, 128, u32::MAX] {
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        assert_eq!(leb128::read_u32(&buf).unwrap(), (v, buf.len()));
    }
}

#[test]
fn leb128_i64_roundtrip() {
    check("leb128_i64_roundtrip", 256, |g| {
        let v = g.next_i64();
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        let (got, n) = leb128::read_i64(&buf).unwrap();
        assert_eq!(got, v);
        assert_eq!(n, buf.len());
    });
    for v in [0i64, -1, 63, 64, -64, -65, i64::MIN, i64::MAX] {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        assert_eq!(leb128::read_i64(&buf).unwrap(), (v, buf.len()));
    }
}

#[test]
fn leb128_rejects_truncation() {
    check("leb128_rejects_truncation", 256, |g| {
        let v = g.range_u64(128, u32::MAX as u64 + 1) as u32;
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        buf.pop();
        assert!(leb128::read_u32(&buf).is_err());
    });
}

fn gen_instruction(g: &mut SplitMix64) -> I {
    match g.index(26) {
        0 => I::Unreachable,
        1 => I::Nop,
        2 => I::Drop,
        3 => I::Select,
        4 => I::Return,
        5 => I::End,
        6 => I::MemorySize,
        7 => I::MemoryGrow,
        8 => I::Br(g.next_u32()),
        9 => I::BrIf(g.next_u32()),
        10 => I::Call(g.next_u32()),
        11 => I::LocalGet(g.next_u32()),
        12 => I::GlobalSet(g.next_u32()),
        13 => I::I32Const(g.next_i32()),
        14 => I::I64Const(g.next_i64()),
        15 => I::F32Const(g.next_f32()),
        16 => I::F64Const(g.next_f64()),
        17 => I::I32Load(MemArg { align: g.next_u32(), offset: g.next_u32() }),
        18 => I::I64Store(MemArg { align: g.next_u32(), offset: g.next_u32() }),
        19 => {
            let targets = (0..g.index(8)).map(|_| g.next_u32()).collect();
            I::BrTable(Box::new(BrTableData { targets, default: g.next_u32() }))
        }
        20 => I::Block(*g.choose(&[
            BlockType::Empty,
            BlockType::Value(ValType::I32),
            BlockType::Value(ValType::F64),
        ])),
        21 => I::I32Add,
        22 => I::I64Rotr,
        23 => I::F32Sqrt,
        24 => I::F64Copysign,
        25 => I::I32TruncF64U,
        _ => I::F64ReinterpretI64,
    }
}

#[test]
fn instruction_roundtrip() {
    check("instruction_roundtrip", 512, |g| {
        let i = gen_instruction(g);
        let mut buf = Vec::new();
        write_instr(&mut buf, &i);
        let (got, n) = read_instr(&buf).unwrap();
        assert_eq!(n, buf.len());
        // NaN payloads survive bitwise; compare via re-encoding.
        let mut buf2 = Vec::new();
        write_instr(&mut buf2, &got);
        assert_eq!(buf, buf2);
    });
}

fn gen_valtype(g: &mut SplitMix64) -> ValType {
    *g.choose(&[ValType::I32, ValType::I64, ValType::F32, ValType::F64])
}

fn gen_functype(g: &mut SplitMix64) -> FuncType {
    let params = (0..g.index(5)).map(|_| gen_valtype(g)).collect();
    let results = (0..g.index(2)).map(|_| gen_valtype(g)).collect();
    FuncType::new(params, results)
}

/// An arbitrary structurally-plausible module (not necessarily valid — the
/// round-trip property only needs well-formed encoding).
fn gen_module(g: &mut SplitMix64) -> Module {
    let mut m = Module::default();
    let ntypes = 1 + g.index(3) as u32;
    m.types = (0..ntypes).map(|_| gen_functype(g)).collect();
    // One function per type, with a trivial body.
    for t in 0..ntypes {
        m.funcs.push(t);
        m.bodies.push(FuncBody {
            locals: vec![(2, ValType::I32)],
            code: bytelite::Bytes::from_static(&[0x00, 0x0b]), // unreachable; end
        });
    }
    if g.next_bool() {
        let data: Vec<u8> = (0..g.index(64)).map(|_| g.next_u32() as u8).collect();
        m.memories.push(MemoryType { limits: Limits::new(1, Some(4)) });
        m.data.push(DataSegment {
            memory: 0,
            offset: ConstExpr::I32(0),
            bytes: bytelite::Bytes::from(data),
        });
    }
    for i in 0..g.index(3) {
        m.globals.push(Global {
            ty: GlobalType { value: ValType::I64, mutable: g.next_bool() },
            init: ConstExpr::I64(g.next_u32() as u16 as i64),
        });
        m.exports.push(Export { name: format!("g{i}"), desc: ExportDesc::Global(i as u32) });
    }
    m
}

#[test]
fn module_roundtrip() {
    check("module_roundtrip", 64, |g| {
        let m = gen_module(g);
        let bytes = encode_module(&m);
        let back = decode_module(bytes).unwrap();
        assert_eq!(back, m);
    });
}

/// A random straight-line arithmetic program over two i32 params: a list of
/// (operation, constant) steps folded onto an accumulator.
#[derive(Debug, Clone)]
enum Op {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Xor(i32),
    RotlParam1,
    AddParam0,
    ShrU(u32),
    IfPositiveNegate,
}

fn gen_program(g: &mut SplitMix64) -> Vec<Op> {
    let len = 1 + g.index(39);
    (0..len)
        .map(|_| match g.index(8) {
            0 => Op::Add(g.next_i32()),
            1 => Op::Sub(g.next_i32()),
            2 => Op::Mul(g.next_i32()),
            3 => Op::Xor(g.next_i32()),
            4 => Op::RotlParam1,
            5 => Op::AddParam0,
            6 => Op::ShrU(g.range_u64(0, 31) as u32),
            _ => Op::IfPositiveNegate,
        })
        .collect()
}

fn build_program_module(prog: &[Op]) -> Module {
    let mut b = ModuleBuilder::new();
    let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
        let acc = f.local(ValType::I32);
        f.local_get(0).local_set(acc);
        for op in prog {
            match op {
                Op::Add(c) => {
                    f.local_get(acc).i32_const(*c).op(I::I32Add).local_set(acc);
                }
                Op::Sub(c) => {
                    f.local_get(acc).i32_const(*c).op(I::I32Sub).local_set(acc);
                }
                Op::Mul(c) => {
                    f.local_get(acc).i32_const(*c).op(I::I32Mul).local_set(acc);
                }
                Op::Xor(c) => {
                    f.local_get(acc).i32_const(*c).op(I::I32Xor).local_set(acc);
                }
                Op::RotlParam1 => {
                    f.local_get(acc).local_get(1).op(I::I32Rotl).local_set(acc);
                }
                Op::AddParam0 => {
                    f.local_get(acc).local_get(0).op(I::I32Add).local_set(acc);
                }
                Op::ShrU(c) => {
                    f.local_get(acc).i32_const(*c as i32).op(I::I32ShrU).local_set(acc);
                }
                Op::IfPositiveNegate => {
                    f.local_get(acc).i32_const(0).op(I::I32GtS);
                    f.if_else(
                        BlockType::Empty,
                        |f| {
                            f.i32_const(0).local_get(acc).op(I::I32Sub).local_set(acc);
                        },
                        |_| {},
                    );
                }
            }
        }
        f.local_get(acc);
    });
    b.export_func("run", f);
    b.build()
}

/// Reference semantics in plain Rust.
fn reference_eval(prog: &[Op], p0: i32, p1: i32) -> i32 {
    let mut acc = p0;
    for op in prog {
        acc = match op {
            Op::Add(c) => acc.wrapping_add(*c),
            Op::Sub(c) => acc.wrapping_sub(*c),
            Op::Mul(c) => acc.wrapping_mul(*c),
            Op::Xor(c) => acc ^ c,
            Op::RotlParam1 => acc.rotate_left(p1 as u32 & 31),
            Op::AddParam0 => acc.wrapping_add(p0),
            Op::ShrU(c) => ((acc as u32) >> c) as i32,
            Op::IfPositiveNegate => {
                if acc > 0 {
                    0i32.wrapping_sub(acc)
                } else {
                    acc
                }
            }
        };
    }
    acc
}

#[test]
fn tiers_match_each_other_and_the_reference() {
    check("tiers_match_each_other_and_the_reference", 96, |g| {
        let prog = gen_program(g);
        let p0 = g.next_i32();
        let p1 = g.next_i32();
        let module = Arc::new(build_program_module(&prog));
        validate_module(&module).unwrap();
        let expected = reference_eval(&prog, p0, p1);
        for tier in [ExecTier::InPlace, ExecTier::Lowered] {
            let mut inst = Instance::instantiate(
                Arc::clone(&module),
                Imports::new(),
                InstanceConfig { tier, fuel: Some(1_000_000), ..Default::default() },
            )
            .unwrap();
            let out = inst.invoke("run", &[Value::I32(p0), Value::I32(p1)]).unwrap();
            assert_eq!(&out[..], &[Value::I32(expected)][..], "{tier:?}");
        }
    });
}

#[test]
fn encode_decode_of_generated_programs() {
    check("encode_decode_of_generated_programs", 96, |g| {
        let prog = gen_program(g);
        let module = build_program_module(&prog);
        let bytes = encode_module(&module);
        let back = decode_module(bytes).unwrap();
        assert_eq!(back, module);
    });
}
