//! # workloads — the benchmark applications
//!
//! The paper's evaluation runs "a minimal C application corresponding to a
//! very small microservice" (§IV-A) in every container, plus Python
//! equivalents for the baseline comparison. No C toolchain exists in this
//! offline reproduction, so the Wasm modules are assembled programmatically
//! with `wasm-core`'s builder into **real binaries** that the engines
//! decode, validate and execute. Knobs:
//!
//! * `memory_pages` — minimum linear memory (wasi-libc reserves data +
//!   stack + malloc arena; ~2.5 MB for a small C program);
//! * `code_padding_funcs` — additional real (validated, compiled) functions
//!   modeling the code a C program links in (libc pieces); this is what
//!   eager compilers chew on;
//! * `loop_iterations` — the bounded startup-work slice the service
//!   performs before reaching its ready state. Engine `exec_ns_per_instr`
//!   values fold in a work-representation scale so this slice stands for
//!   the paper's full workload.

pub mod module;
pub mod python;

pub use module::{
    balloon_module, hung_service_module, microservice_module, microservice_module_bytes,
    MicroserviceConfig,
};
pub use python::{python_microservice_script, PythonScriptConfig};

use oci_spec_lite::ImageBuilder;

/// The Wasm microservice image (annotated for Wasm handler dispatch).
/// Configs with a nonzero `optional_work_ppm` additionally carry the
/// brownout annotation declaring how much request work the service layer
/// may tell the guest to skip in degraded mode.
pub fn wasm_microservice_image(reference: &str, cfg: &MicroserviceConfig) -> ImageBuilder {
    let mut b = ImageBuilder::new(reference)
        .entrypoint(["/app/main.wasm".to_string()])
        .annotation(oci_spec_lite::WASM_VARIANT_ANNOTATION, "compat")
        .env("SERVICE_NAME", "microservice")
        // Memoized: every image built from the same config shares one
        // zero-copy byte string (which also keeps the engine-side module
        // artifact cache hot — identical bytes, identical content hash).
        .file("/app/main.wasm", microservice_module_bytes(cfg));
    if cfg.optional_work_ppm > 0 {
        b = b.annotation(oci_spec_lite::BROWNOUT_ANNOTATION, &cfg.optional_work_ppm.to_string());
    }
    b
}

/// The hung-guest service image for the chaos sweep's watchdog scenario:
/// the guest busy-waits until the simulated clock passes `ready_after_ns`
/// (see [`hung_service_module`]), so starts dispatched earlier wedge on
/// their watchdog budget and restarts dispatched later come up ready.
pub fn hung_service_image(reference: &str, ready_after_ns: u64) -> ImageBuilder {
    ImageBuilder::new(reference)
        .entrypoint(["/app/hung.wasm".to_string()])
        .annotation(oci_spec_lite::WASM_VARIANT_ANNOTATION, "compat")
        .env("SERVICE_NAME", "hung-service")
        .file("/app/hung.wasm", hung_service_module(ready_after_ns))
}

/// The memory-growth balloon attacker image (see [`balloon_module`]).
pub fn balloon_image(reference: &str, step_pages: i32, steps: i32) -> ImageBuilder {
    ImageBuilder::new(reference)
        .entrypoint(["/app/balloon.wasm".to_string()])
        .annotation(oci_spec_lite::WASM_VARIANT_ANNOTATION, "compat")
        .env("SERVICE_NAME", "balloon")
        .file("/app/balloon.wasm", balloon_module(step_pages, steps))
}

/// The CPU spinner attacker image: a microservice whose burn is sized to
/// sit just under the epoch deadline (see [`MicroserviceConfig::spinner`]).
pub fn spinner_image(reference: &str, loop_iterations: i32) -> ImageBuilder {
    wasm_microservice_image(reference, &MicroserviceConfig::spinner(loop_iterations))
}

/// The page-cache thrasher attacker image: a tiny service that carries a
/// `/data/stream.bin` payload and the io-churn annotation, so every guest
/// execution path streams `passes` cold reads over it.
pub fn thrasher_image(reference: &str, stream_bytes: usize, passes: u32) -> ImageBuilder {
    let quiet = MicroserviceConfig {
        loop_iterations: 100,
        ready_message: "thrasher ready\n",
        ..Default::default()
    };
    wasm_microservice_image(reference, &quiet)
        .annotation(oci_spec_lite::IO_CHURN_ANNOTATION, &passes.to_string())
        .file("/data/stream.bin", vec![0u8; stream_bytes])
}

/// The instantiation fork-bomb attacker image: the churn annotation makes
/// the engine re-instantiate the module `churn` extra times, each instance's
/// overhead staying charged.
pub fn fork_bomb_image(reference: &str, churn: u32) -> ImageBuilder {
    let quiet = MicroserviceConfig {
        loop_iterations: 100,
        ready_message: "fork-bomb ready\n",
        ..Default::default()
    };
    wasm_microservice_image(reference, &quiet)
        .annotation(oci_spec_lite::INSTANTIATE_CHURN_ANNOTATION, &churn.to_string())
}

/// The Python microservice image.
pub fn python_microservice_image(reference: &str, cfg: &PythonScriptConfig) -> ImageBuilder {
    ImageBuilder::new(reference)
        .entrypoint(["/usr/bin/python3".to_string(), "/app/service.py".to_string()])
        .env("SERVICE_NAME", "microservice")
        .file("/app/service.py", python_microservice_script(cfg).into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_builders_produce_expected_entrypoints() {
        let b = wasm_microservice_image("svc:v1", &MicroserviceConfig::default());
        // Builders are opaque; materialize through a kernel to check.
        let kernel = simkernel::Kernel::boot(simkernel::KernelConfig::default());
        let mut store = oci_spec_lite::ImageStore::new();
        let img = store.register(&kernel, b).unwrap();
        assert_eq!(img.command(), vec!["/app/main.wasm"]);
        assert!(img.config.annotations.contains_key(oci_spec_lite::WASM_VARIANT_ANNOTATION));

        let b = python_microservice_image("py:v1", &PythonScriptConfig::default());
        let img = store.register(&kernel, b).unwrap();
        assert_eq!(img.command()[0], "/usr/bin/python3");
    }
}
