//! The Wasm microservice module generator.

use std::collections::HashMap;
use std::sync::RwLock;

use bytelite::Bytes;
use wasm_core::types::BlockType;
use wasm_core::{FuncType, Instruction, ModuleBuilder, ValType};

/// Shape of the generated microservice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MicroserviceConfig {
    /// Minimum linear memory pages (64 KiB each). wasi-libc's default
    /// layout for a small C program commits ~2.5 MB.
    pub memory_pages: u32,
    pub max_memory_pages: Option<u32>,
    /// Extra real functions (validated and, on eager engines, compiled),
    /// modeling linked-in libc code.
    pub code_padding_funcs: u32,
    /// Bounded startup-work loop iterations before the ready message.
    pub loop_iterations: i32,
    /// The readiness line written to stdout.
    pub ready_message: &'static str,
    /// Share of per-request work (parts-per-million) that is *optional* —
    /// skippable when the service layer asks for brownout/degraded mode
    /// (smaller response, no enrichment). Zero means no degraded mode; the
    /// image builder emits it as the brownout OCI annotation when set.
    /// Does not affect the generated module bytes, so existing images stay
    /// byte-identical.
    pub optional_work_ppm: u32,
}

impl Default for MicroserviceConfig {
    fn default() -> Self {
        MicroserviceConfig {
            memory_pages: 40, // 2.5 MiB
            max_memory_pages: Some(256),
            code_padding_funcs: 48,
            loop_iterations: 2_000,
            ready_message: "microservice ready\n",
            optional_work_ppm: 0,
        }
    }
}

impl MicroserviceConfig {
    /// A heavier application for the §IV-D/F "impact of different
    /// applications" discussion: more code, more memory, more work.
    pub fn compute_heavy() -> Self {
        MicroserviceConfig {
            memory_pages: 160, // 10 MiB
            max_memory_pages: Some(1024),
            code_padding_funcs: 160,
            loop_iterations: 20_000,
            ready_message: "compute service ready\n",
            optional_work_ppm: 0,
        }
    }

    /// A memory-hungry application (large arena touched at startup).
    pub fn memory_heavy() -> Self {
        MicroserviceConfig {
            memory_pages: 240, // 15 MiB
            max_memory_pages: Some(2048),
            code_padding_funcs: 48,
            loop_iterations: 4_000,
            ready_message: "cache service ready\n",
            optional_work_ppm: 0,
        }
    }

    /// The adversarial CPU spinner: a bounded burn sized by the attacker to
    /// sit just under the epoch deadline, so the watchdog never fires —
    /// until `cpu.max` scales the deadline down and the same burn overshoots
    /// it. Light on code padding: the spin is the workload.
    pub fn spinner(loop_iterations: i32) -> Self {
        MicroserviceConfig {
            memory_pages: 40,
            max_memory_pages: Some(256),
            code_padding_funcs: 8,
            loop_iterations,
            ready_message: "spinner ready\n",
            optional_work_ppm: 0,
        }
    }
}

/// Build the microservice module binary.
///
/// Layout: WASI imports, linear memory, the ready-message data segment, an
/// iovec, `code_padding_funcs` arithmetic helper functions (two of which the
/// startup loop actually calls), and `_start`:
///
/// ```text
/// _start:
///   acc = 0
///   for i in 0..loop_iterations { acc = mix(acc, i) }   // real work
///   store acc (defeats dead-code elimination)
///   fd_write(1, iovec, 1, nwritten)                     // ready message
/// ```
pub fn microservice_module(cfg: &MicroserviceConfig) -> Vec<u8> {
    microservice_module_bytes(cfg).to_vec()
}

/// Memoized form of [`microservice_module`]: generation is deterministic
/// (same config, same binary — see the `deterministic_bytes` test), so each
/// distinct config is assembled and encoded once per process and every
/// image built from it shares the same zero-copy [`Bytes`]. Experiment
/// grids deploy hundreds of containers from a handful of configs; without
/// the memo each deployment re-runs the module builder.
pub fn microservice_module_bytes(cfg: &MicroserviceConfig) -> Bytes {
    static MEMO: RwLock<Option<HashMap<MicroserviceConfig, Bytes>>> = RwLock::new(None);
    // Read-locked fast path: after warm-up every deployment on every
    // driver worker hits here concurrently, so this must not serialize.
    if let Some(bytes) = MEMO
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
        .and_then(|m| m.get(cfg))
    {
        return bytes.clone();
    }
    // Build outside the write lock (generation is deterministic, so a
    // racing duplicate build yields identical bytes and first-insert
    // wins — cheaper than holding the lock across assembly).
    let bytes = Bytes::from(build_microservice_module(cfg));
    let mut memo = MEMO.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    memo.get_or_insert_with(HashMap::new).entry(cfg.clone()).or_insert(bytes).clone()
}

fn build_microservice_module(cfg: &MicroserviceConfig) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let fd_write = b.import_func(
        "wasi_snapshot_preview1",
        "fd_write",
        FuncType::new(vec![ValType::I32; 4], vec![ValType::I32]),
    );
    let mem = b.memory(cfg.memory_pages, cfg.max_memory_pages);
    b.export_memory("memory", mem);

    let msg = cfg.ready_message.as_bytes().to_vec();
    let msg_len = msg.len() as i32;
    b.data(64, msg);
    // iovec { ptr: 64, len } at 16; nwritten at 32.
    let mut iov = Vec::new();
    iov.extend_from_slice(&64i32.to_le_bytes());
    iov.extend_from_slice(&msg_len.to_le_bytes());
    b.data(16, iov);

    let bin_sig = FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]);

    // Padding functions: real, distinct arithmetic bodies.
    let mut padding = Vec::with_capacity(cfg.code_padding_funcs as usize);
    for i in 0..cfg.code_padding_funcs {
        let k = i as i32;
        let f = b.func(bin_sig.clone(), move |f| {
            // A body of ~0.5 KiB of distinct straight-line arithmetic per
            // function, with per-function constants so no two bodies are
            // identical (defeats any hash-consing shortcut a compiler tier
            // might take).
            f.local_get(0)
                .i32_const(k.wrapping_mul(2654435761u32 as i32) | 1)
                .op(Instruction::I32Mul);
            for round in 0..24 {
                let c = (k + round).wrapping_mul(40503) ^ 0x5bd1e995;
                f.local_get(1).i32_const(c).op(Instruction::I32Add).op(Instruction::I32Xor);
                f.i32_const(((k + round) % 13) + 1)
                    .op(Instruction::I32Rotl)
                    .local_get(0)
                    .op(Instruction::I32Add);
                f.local_get(1)
                    .i32_const((round % 7) + 1)
                    .op(Instruction::I32ShrU)
                    .op(Instruction::I32Xor);
            }
        });
        padding.push(f);
    }
    let mix_a = padding.first().copied();
    let mix_b = padding.get(1).copied();

    let start = b.func(FuncType::new(vec![], vec![]), |f| {
        let acc = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        f.i32_const(cfg.loop_iterations).local_set(i);
        f.block(BlockType::Empty, |f| {
            f.loop_(BlockType::Empty, |f| {
                f.local_get(i).op(Instruction::I32Eqz).br_if(1);
                // acc = mix(acc, i) — through real calls when padding exists.
                match (mix_a, mix_b) {
                    (Some(a), Some(bf)) => {
                        f.local_get(acc).local_get(i).call(a);
                        f.local_get(i).call(bf);
                        f.local_set(acc);
                    }
                    _ => {
                        f.local_get(acc)
                            .local_get(i)
                            .op(Instruction::I32Add)
                            .i32_const(2654435761u32 as i32)
                            .op(Instruction::I32Mul)
                            .local_set(acc);
                    }
                }
                f.local_get(i).i32_const(1).op(Instruction::I32Sub).local_set(i);
                f.br(0);
            });
        });
        // Store the accumulator so the loop is observable.
        f.i32_const(48).local_get(acc).i32_store(0);
        // fd_write(1, 16, 1, 32)
        f.i32_const(1).i32_const(16).i32_const(1).i32_const(32).call(fd_write).drop_();
    });
    b.export_func("_start", start);
    b.build_bytes()
}

/// The chaos sweep's hung-guest service: announces itself, then busy-waits
/// on `clock_time_get` until the simulated clock passes `ready_after_ns`
/// before printing its ready line.
///
/// The DES clock is frozen while a guest executes, so a start dispatched
/// before `ready_after_ns` spins forever — only the watchdog epoch budget
/// (armed by the kubelet from the liveness-probe window) parks it, leaving a
/// wedged container for the probes to discover. A restart dispatched after
/// `ready_after_ns` (the CrashLoopBackOff backoff has advanced the clock)
/// sees the deadline already passed and reaches ready promptly — which makes
/// the detect → interrupt → restart → converge contract fully deterministic.
pub fn hung_service_module(ready_after_ns: u64) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let fd_write = b.import_func(
        "wasi_snapshot_preview1",
        "fd_write",
        FuncType::new(vec![ValType::I32; 4], vec![ValType::I32]),
    );
    let clock_time_get = b.import_func(
        "wasi_snapshot_preview1",
        "clock_time_get",
        FuncType::new(vec![ValType::I32, ValType::I64, ValType::I32], vec![ValType::I32]),
    );
    let mem = b.memory(40, Some(256));
    b.export_memory("memory", mem);

    // Layout: time at 8, iovecs at 16 (waiting) and 32 (ready), nwritten at
    // 48, message bytes from 64.
    let waiting = b"hung service: waiting\n".to_vec();
    let ready = b"hung service: ready\n".to_vec();
    let (waiting_ptr, ready_ptr) = (64i32, 128i32);
    let mut iov = Vec::new();
    iov.extend_from_slice(&waiting_ptr.to_le_bytes());
    iov.extend_from_slice(&(waiting.len() as i32).to_le_bytes());
    b.data(16, iov);
    let mut iov = Vec::new();
    iov.extend_from_slice(&ready_ptr.to_le_bytes());
    iov.extend_from_slice(&(ready.len() as i32).to_le_bytes());
    b.data(32, iov);
    b.data(waiting_ptr, waiting);
    b.data(ready_ptr, ready);

    let start = b.func(FuncType::new(vec![], vec![]), |f| {
        // fd_write(1, 16, 1, 48): announce before blocking.
        f.i32_const(1).i32_const(16).i32_const(1).i32_const(48).call(fd_write).drop_();
        f.block(BlockType::Empty, |f| {
            f.loop_(BlockType::Empty, |f| {
                // clock_time_get(realtime, 0, &time)
                f.i32_const(0).i64_const(0).i32_const(8).call(clock_time_get).drop_();
                f.i32_const(0)
                    .i64_load(8)
                    .i64_const(ready_after_ns as i64)
                    .op(Instruction::I64GeU)
                    .br_if(1);
                f.br(0);
            });
        });
        // fd_write(1, 32, 1, 48): the ready line.
        f.i32_const(1).i32_const(32).i32_const(1).i32_const(48).call(fd_write).drop_();
    });
    b.export_func("_start", start);
    b.build_bytes()
}

/// The memory-growth balloon: announces itself, then ratchets linear memory
/// with `memory.grow(step_pages)` up to `steps` times, stopping early if a
/// grow fails. The grown memory stays held when `_start` returns, so the
/// engine charges it all to the pod — `memory.max` on the attacker's cgroup
/// is the only thing between this and the node's free list.
pub fn balloon_module(step_pages: i32, steps: i32) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    let fd_write = b.import_func(
        "wasi_snapshot_preview1",
        "fd_write",
        FuncType::new(vec![ValType::I32; 4], vec![ValType::I32]),
    );
    // No declared max: growth is bounded by the step count, not the module.
    let mem = b.memory(16, None);
    b.export_memory("memory", mem);

    let msg = b"balloon ready\n".to_vec();
    let msg_len = msg.len() as i32;
    b.data(64, msg);
    let mut iov = Vec::new();
    iov.extend_from_slice(&64i32.to_le_bytes());
    iov.extend_from_slice(&msg_len.to_le_bytes());
    b.data(16, iov);

    let start = b.func(FuncType::new(vec![], vec![]), move |f| {
        // fd_write(1, 16, 1, 32): the ready line, before inflating.
        f.i32_const(1).i32_const(16).i32_const(1).i32_const(32).call(fd_write).drop_();
        let i = f.local(ValType::I32);
        f.i32_const(steps).local_set(i);
        f.block(BlockType::Empty, |f| {
            f.loop_(BlockType::Empty, |f| {
                f.local_get(i).op(Instruction::I32Eqz).br_if(1);
                // memory.grow(step) == -1 means the ratchet hit a wall.
                f.i32_const(step_pages).op(Instruction::MemoryGrow);
                f.i32_const(-1).op(Instruction::I32Eq).br_if(1);
                f.local_get(i).i32_const(1).op(Instruction::I32Sub).local_set(i);
                f.br(0);
            });
        });
    });
    b.export_func("_start", start);
    b.build_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wasm_core::{decode_module, validate_module, ExecTier, Imports, Instance, InstanceConfig};

    fn run(cfg: &MicroserviceConfig, tier: ExecTier) -> (Vec<u8>, wasm_core::ExecStats) {
        let bytes = microservice_module(cfg);
        let module = Arc::new(decode_module(bytes).unwrap());
        let out = std::rc::Rc::new(std::cell::RefCell::new(Vec::<u8>::new()));
        let out2 = out.clone();
        let imports =
            Imports::new().func("wasi_snapshot_preview1", "fd_write", move |mem, args| {
                let m = mem.as_mut().expect("memory");
                let iovs = args[1].as_i32().unwrap() as u32;
                let base = m.load_u32(iovs, 0).unwrap();
                let len = m.load_u32(iovs, 4).unwrap();
                out2.borrow_mut().extend_from_slice(m.read_bytes(base, len).unwrap());
                Ok(vec![wasm_core::Value::I32(0)])
            });
        let mut inst = Instance::instantiate(
            module,
            imports,
            InstanceConfig { tier, fuel: Some(100_000_000), ..Default::default() },
        )
        .unwrap();
        inst.run_start().unwrap();
        let stats = inst.stats();
        let bytes = out.borrow().clone();
        drop(inst);
        (bytes, stats)
    }

    #[test]
    fn module_validates() {
        let bytes = microservice_module(&MicroserviceConfig::default());
        let module = decode_module(bytes).unwrap();
        validate_module(&module).unwrap();
        assert!(module.code_size() > 4_000, "padding produces real code");
        assert_eq!(module.memories[0].limits.min, 40);
    }

    #[test]
    fn runs_on_both_tiers_with_same_output() {
        let cfg = MicroserviceConfig::default();
        let (out_a, stats_a) = run(&cfg, ExecTier::InPlace);
        let (out_b, stats_b) = run(&cfg, ExecTier::Lowered);
        assert_eq!(out_a, b"microservice ready\n");
        assert_eq!(out_a, out_b);
        assert!(stats_a.instrs_retired > 10_000, "{stats_a:?}");
        // Same logical work on both tiers.
        assert_eq!(stats_a.host_calls, stats_b.host_calls);
    }

    #[test]
    fn heavier_configs_scale() {
        let small = microservice_module(&MicroserviceConfig::default());
        let heavy = microservice_module(&MicroserviceConfig::compute_heavy());
        assert!(heavy.len() > 2 * small.len());
        let (_, s_small) = run(&MicroserviceConfig::default(), ExecTier::InPlace);
        let (_, s_heavy) = run(&MicroserviceConfig::compute_heavy(), ExecTier::InPlace);
        assert!(s_heavy.instrs_retired > 5 * s_small.instrs_retired);
    }

    #[test]
    fn memoized_bytes_are_shared_and_correct() {
        let cfg = MicroserviceConfig::default();
        let a = microservice_module_bytes(&cfg);
        let b = microservice_module_bytes(&cfg);
        assert_eq!(a.as_ptr(), b.as_ptr(), "same config must share one allocation");
        assert_eq!(&a[..], &microservice_module(&cfg)[..]);
        let heavy = microservice_module_bytes(&MicroserviceConfig::compute_heavy());
        assert_ne!(&a[..], &heavy[..]);
    }

    #[test]
    fn balloon_grows_and_holds() {
        let bytes = balloon_module(16, 8); // 16 + 128 pages = 9 MiB
        let module = Arc::new(decode_module(bytes).unwrap());
        validate_module(&module).unwrap();
        let imports = Imports::new().func("wasi_snapshot_preview1", "fd_write", |_m, _a| {
            Ok(vec![wasm_core::Value::I32(0)])
        });
        let mut inst = Instance::instantiate(
            module,
            imports,
            InstanceConfig {
                tier: ExecTier::InPlace,
                fuel: Some(100_000_000),
                ..Default::default()
            },
        )
        .unwrap();
        inst.run_start().unwrap();
        let mem = inst.memory().expect("exported memory");
        assert_eq!(mem.size_bytes(), (16 + 16 * 8) * 64 * 1024, "ratcheted to full size");
    }

    #[test]
    fn deterministic_bytes() {
        let a = microservice_module(&MicroserviceConfig::default());
        let b = microservice_module(&MicroserviceConfig::default());
        assert_eq!(a, b, "same config, same binary (content-addressed caches rely on it)");
    }
}
