//! The Python microservice script generator (the paper's non-Wasm
//! baseline, §IV-D).

/// Shape of the generated script.
#[derive(Debug, Clone)]
pub struct PythonScriptConfig {
    /// Startup-work loop iterations (logically equivalent to the Wasm
    /// microservice's warm-up loop).
    pub loop_iterations: i64,
    /// Modules the service imports at startup.
    pub imports: &'static [&'static str],
    pub ready_message: &'static str,
    /// Retain every loop result in an in-heap cache (memory-heavy shape).
    pub retain_cache: bool,
}

impl Default for PythonScriptConfig {
    fn default() -> Self {
        PythonScriptConfig {
            loop_iterations: 2_000,
            imports: &["sys", "os", "time"],
            ready_message: "microservice ready",
            retain_cache: false,
        }
    }
}

impl PythonScriptConfig {
    /// A memory-hungry service: builds a large in-heap cache at startup
    /// (each retained element is a real tracked allocation, so the
    /// interpreter-heap charge grows accordingly).
    pub fn memory_heavy() -> Self {
        PythonScriptConfig {
            loop_iterations: 40_000,
            imports: &["sys", "os", "time"],
            ready_message: "cache service ready",
            retain_cache: true,
        }
    }

    pub fn compute_heavy() -> Self {
        PythonScriptConfig {
            loop_iterations: 20_000,
            imports: &["sys", "os", "time", "math", "json"],
            ready_message: "compute service ready",
            retain_cache: false,
        }
    }
}

/// Generate the service script source.
pub fn python_microservice_script(cfg: &PythonScriptConfig) -> String {
    let mut s = String::new();
    for m in cfg.imports {
        s.push_str("import ");
        s.push_str(m);
        s.push('\n');
    }
    s.push('\n');
    s.push_str("def mix(acc, i):\n");
    s.push_str("    return (acc * 31 + i) % 1000003\n");
    s.push('\n');
    s.push_str("def main():\n");
    s.push_str("    acc = 0\n");
    if cfg.retain_cache {
        s.push_str("    cache = []\n");
    }
    s.push_str(&format!("    for i in range({}):\n", cfg.loop_iterations));
    s.push_str("        acc = mix(acc, i)\n");
    if cfg.retain_cache {
        s.push_str("        cache.append(acc)\n");
    }
    s.push_str(&format!("    print(\"{}\")\n", cfg.ready_message));
    s.push_str("    return 0\n");
    s.push('\n');
    s.push_str("main()\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyrt::{parse, Interp, PyError};

    #[test]
    fn script_parses_and_runs() {
        let src = python_microservice_script(&PythonScriptConfig::default());
        let program = parse(&src).unwrap();
        let mut interp = Interp::new(vec!["service.py".into()], vec![]);
        match interp.run(&program) {
            Ok(0) => {}
            Err(PyError::Exit(0)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(interp.stdout, b"microservice ready\n");
        assert_eq!(interp.imported_modules(), ["sys", "os", "time"]);
        assert!(interp.stats().ops > 10_000);
    }

    #[test]
    fn heavy_script_does_more_work() {
        let light = python_microservice_script(&PythonScriptConfig::default());
        let heavy = python_microservice_script(&PythonScriptConfig::compute_heavy());
        let run_ops = |src: &str| {
            let program = parse(src).unwrap();
            let mut i = Interp::new(vec![], vec![]);
            i.run(&program).unwrap();
            i.stats().ops
        };
        assert!(run_ops(&heavy) > 5 * run_ops(&light));
    }
}
