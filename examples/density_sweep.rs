//! Density sweep: per-container memory and startup behaviour of the
//! WAMR-crun integration from 10 to 400 pods on one node — the scalability
//! property §IV-B highlights ("the memory overhead per container does not
//! vary significantly between different deployment sizes").
//!
//! Run with: `cargo run --release --example density_sweep`

use memwasm::harness::{mb, measure_cell, Config, Observe, Workload};

fn main() {
    let workload = Workload::default();
    let config = Config::WamrCrun;

    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>14}",
        "pods", "metrics MB/ctr", "free MB/ctr", "startup s", "startup ms/pod"
    );
    let mut first_metric = None;
    for density in [10usize, 50, 100, 200, 400] {
        // Both observers from one deployment per density.
        let cell = measure_cell(config, density, &workload, Observe::Both).expect("cell");
        let (memory, startup) = (cell.memory.expect("memory"), cell.startup.expect("startup"));
        let per_pod_ms = startup.total.as_secs_f64() * 1000.0 / density as f64;
        println!(
            "{:>8} {:>14.2} {:>12.2} {:>12.2} {:>14.1}",
            density,
            mb(memory.metrics_avg),
            mb(memory.free_per_pod),
            startup.total.as_secs_f64(),
            per_pod_ms
        );
        first_metric.get_or_insert(memory.metrics_avg);
    }
    let first = first_metric.expect("at least one density") as f64;
    println!(
        "\nper-container working set stays flat with density — the scaling\n\
         property that makes the integration viable at 400+ pods/node\n\
         (kubelet max-pods extension, paper §III-C)."
    );
    let _ = first;
}
