//! Hybrid deployments: Wasm and native containers side by side on the same
//! modified crun — the compatibility property §III-C claims ("Kubernetes
//! pods can seamlessly run traditional and Wasm-based containers, enabling
//! hybrid deployments without additional infrastructure changes").
//!
//! One runtime class carries three handlers (WAMR, Python, pause); the
//! dispatch happens per container from its OCI spec.
//!
//! Run with: `cargo run --example hybrid_pods`

use memwasm::container_runtimes::handler::PauseHandler;
use memwasm::container_runtimes::profile::CRUN;
use memwasm::container_runtimes::LowLevelRuntime;
use memwasm::containerd_sim::RuntimeClass;
use memwasm::harness::mb;
use memwasm::k8s_sim::Cluster;
use memwasm::pyrt::PythonHandler;
use memwasm::wamr_crun::{WamrCrunConfig, WamrHandler};
use memwasm::workloads::{
    python_microservice_image, wasm_microservice_image, MicroserviceConfig, PythonScriptConfig,
};

fn main() {
    let mut cluster = Cluster::bootstrap().expect("cluster");
    memwasm::pyrt::install_python(cluster.kernel()).expect("python install");

    // The modified crun: WAMR for .wasm entrypoints, Python for .py,
    // pause for the sandbox — all in one binary, as the paper's
    // integration allows.
    let mut crun = LowLevelRuntime::new(cluster.kernel().clone(), &CRUN);
    crun.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    crun.register_handler(Box::new(PythonHandler::default()));
    crun.register_handler(Box::new(PauseHandler));
    println!("crun handlers: {:?}", crun.handler_names());
    cluster.register_class("crun-hybrid", RuntimeClass::Oci { runtime: crun });

    cluster
        .pull_image(wasm_microservice_image("hybrid-wasm:v1", &MicroserviceConfig::default()))
        .expect("wasm image");
    cluster
        .pull_image(python_microservice_image("hybrid-py:v1", &PythonScriptConfig::default()))
        .expect("python image");

    // Same runtime class, different workloads.
    let wasm_pods = cluster.deploy("wasm", "hybrid-wasm:v1", "crun-hybrid", 5).expect("wasm");
    let py_pods = cluster.deploy("py", "hybrid-py:v1", "crun-hybrid", 5).expect("python");

    println!("wasm pod stdout:   {:?}", String::from_utf8_lossy(&wasm_pods.pods[0].stdout));
    println!("python pod stdout: {:?}", String::from_utf8_lossy(&py_pods.pods[0].stdout));

    let wasm_avg = cluster.average_working_set(&wasm_pods).expect("metrics");
    let py_avg = cluster.average_working_set(&py_pods).expect("metrics");
    println!("wasm containers:   {:.2} MB each (metrics-server)", mb(wasm_avg));
    println!("python containers: {:.2} MB each (metrics-server)", mb(py_avg));
    println!(
        "the Wasm side is {:.1}% lighter on the same runtime binary",
        (1.0 - wasm_avg as f64 / py_avg as f64) * 100.0
    );

    cluster.teardown(wasm_pods).expect("teardown wasm");
    cluster.teardown(py_pods).expect("teardown python");
}
