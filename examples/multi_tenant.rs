//! Multi-tenant scenarios — the paper's §VI future work ("Future research
//! will explore advanced runtime optimizations, multi-tenant scenarios,
//! ...") made concrete.
//!
//! Two tenants share one node, isolated by per-container cgroup memory
//! limits from their OCI specs. Tenant B's containers are sized over their
//! limit: the kernel OOM-kills them without disturbing tenant A — while
//! tenant A's Wasm density headroom (the paper's motivation) is visible in
//! how many pods fit in a fixed memory budget.
//!
//! Run with: `cargo run --release --example multi_tenant`

use memwasm::container_runtimes::handler::PauseHandler;
use memwasm::container_runtimes::profile::CRUN;
use memwasm::container_runtimes::{LowLevelRuntime, RuntimeCtx};
use memwasm::oci_spec_lite::{Bundle, ImageStore, RuntimeSpec};
use memwasm::simkernel::KernelError;
use memwasm::wamr_crun::{WamrCrunConfig, WamrHandler};
use memwasm::workloads::{wasm_microservice_image, MicroserviceConfig};

fn main() {
    let cluster = memwasm::k8s_sim::Cluster::bootstrap().expect("cluster");
    let kernel = cluster.kernel().clone();

    // Tenant cgroup subtrees under kubepods, each with a hard budget.
    let tenant_a = kernel.cgroup_create(cluster.kubepods(), "tenant-a").unwrap();
    let tenant_b = kernel.cgroup_create(cluster.kubepods(), "tenant-b").unwrap();
    kernel.cgroup_set_limit(tenant_a, Some(64 << 20)).unwrap();
    kernel.cgroup_set_limit(tenant_b, Some(8 << 20)).unwrap();

    let mut store = ImageStore::new();
    let image = store
        .register(&kernel, wasm_microservice_image("svc:v1", &MicroserviceConfig::default()))
        .unwrap()
        .clone();

    let mut rt = LowLevelRuntime::new(kernel.clone(), &CRUN);
    rt.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    rt.register_handler(Box::new(PauseHandler));
    let ctx = RuntimeCtx { runtime_cgroup: cluster.system_cgroup() };

    // Tenant A: deploy Wasm microservices until the 64 MiB budget refuses.
    let mut fitted = 0;
    for i in 0..64 {
        let id = format!("a-{i}");
        let mut spec = RuntimeSpec::for_command(&id, image.command());
        for (k, v) in &image.config.annotations {
            spec.annotations.insert(k.clone(), v.clone());
        }
        let bundle = Bundle::create(&kernel, &id, &image, &spec).unwrap();
        let pod = kernel.cgroup_create(tenant_a, &format!("pod-{id}")).unwrap();
        let result =
            rt.create(&ctx, &id, &bundle, pod).and_then(|mut c| rt.start(&ctx, &mut c, &bundle));
        match result {
            Ok(()) => fitted += 1,
            Err(KernelError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    let a_stat = kernel.cgroup_stat(tenant_a).unwrap();
    println!(
        "tenant A: {fitted} Wasm microservices fit in a 64 MiB budget \
         ({:.2} MB used)",
        a_stat.current as f64 / (1 << 20) as f64
    );

    // Tenant B: a single container whose 2.5 MiB linear memory exceeds the
    // tenant's 8 MiB budget once runtime+pod overhead is included — the
    // kernel OOM-kills it at the limit.
    let id = "b-0";
    let mut spec = RuntimeSpec::for_command(id, image.command());
    for (k, v) in &image.config.annotations {
        spec.annotations.insert(k.clone(), v.clone());
    }
    spec.linux.memory.limit = Some(2 << 20); // container limit below its needs
    let bundle = Bundle::create(&kernel, id, &image, &spec).unwrap();
    let pod = kernel.cgroup_create(tenant_b, "pod-b-0").unwrap();
    let err = rt
        .create(&ctx, id, &bundle, pod)
        .and_then(|mut c| rt.start(&ctx, &mut c, &bundle))
        .unwrap_err();
    println!("tenant B: container OOM-killed as expected: {err}");
    if let KernelError::OutOfMemory { cgroup, .. } = &err {
        println!(
            "tenant B OOM events on the limited cgroup: {}",
            kernel.cgroup_oom_events(*cgroup).unwrap()
        );
    }

    // Isolation: tenant A is untouched by tenant B's OOM.
    let a_after = kernel.cgroup_stat(tenant_a).unwrap();
    assert_eq!(a_stat.current, a_after.current, "tenant A unaffected");
    println!("tenant A unaffected by tenant B's OOM (isolation holds)");
}
