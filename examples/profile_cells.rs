//! Host-side profiling helper: time one grid cell per configuration so
//! interpreter/driver optimisations can be attributed. Not part of verify.
//!
//! Usage: `cargo run --release --example profile_cells [density]`

use std::time::Instant;

use memwasm::harness::{measure_cell, Config, Observe, Workload};

fn main() {
    let density: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let w = Workload::default();
    for config in Config::ALL {
        let t = Instant::now();
        let cell = measure_cell(config, density, &w, Observe::Memory).expect("cell");
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:<16} density {:>4}: {:>7.2}s  (metrics_avg {})",
            config.label(),
            density,
            dt,
            cell.memory.unwrap().metrics_avg
        );
    }
}
