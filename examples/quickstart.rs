//! Quickstart: boot a simulated Kubernetes cluster, deploy Wasm
//! microservices through the WAMR-in-crun integration, and read both memory
//! observers.
//!
//! Run with: `cargo run --example quickstart`

use memwasm::harness::{new_cluster, warmup, Config, Workload};
use memwasm::k8s_sim::working_set_stddev;

fn main() {
    let workload = Workload::default();
    let config = Config::WamrCrun;

    // A single-node cluster shaped like the paper's testbed (20 cores,
    // 256 GiB, kubelet max-pods raised to 500) with the WAMR-crun runtime
    // class registered and the microservice image pulled.
    let mut cluster = new_cluster(&[config], &workload).expect("cluster");
    warmup(&mut cluster, config).expect("warmup");

    let free_before = cluster.free().used_with_cache();
    let deployment =
        cluster.deploy("web", config.image_ref(), config.class_name(), 25).expect("deploy");

    println!("deployed {} pods, {} running", deployment.len(), deployment.running());
    println!("first pod stdout: {:?}", String::from_utf8_lossy(&deployment.pods[0].stdout));

    // Observer 1: the Kubernetes metrics-server (per-pod working set).
    let avg = cluster.average_working_set(&deployment).expect("metrics");
    let dev = working_set_stddev(cluster.kernel(), &deployment).expect("stddev");
    println!(
        "metrics-server: {:.2} MB/container (stddev {:.3} MB)",
        avg as f64 / (1 << 20) as f64,
        dev / (1 << 20) as f64
    );

    // Observer 2: the OS (`free`), which also sees shims, daemons, kernel
    // overhead and the page cache.
    let free_after = cluster.free().used_with_cache();
    let per_pod = (free_after - free_before) / deployment.len() as u64;
    println!("free(1):        {:.2} MB/container", per_pod as f64 / (1 << 20) as f64);

    // Startup: time from deployment start until the last container's
    // workload is executing (the paper's Figs. 8-9 metric).
    let outcome = cluster.measure_startup(&[&deployment]);
    println!("time to start all {} containers: {}", deployment.len(), outcome.total());

    cluster.teardown(deployment).expect("teardown");
    println!("torn down; node is empty again");
}
