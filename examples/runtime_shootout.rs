//! Runtime shootout: the paper's §IV-F overview table, live.
//!
//! Deploys the same microservice under all nine runtime configurations and
//! prints memory (both observers) plus startup time side by side.
//!
//! Run with: `cargo run --release --example runtime_shootout [density]`

use memwasm::harness::{mb, measure_cell, Config, Observe, Workload};

fn main() {
    let density: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).filter(|d| *d >= 1).unwrap_or(20);
    let workload = Workload::default();

    println!("{:<28} {:>12} {:>12} {:>12}", "runtime", "metrics MB", "free MB", "startup s");
    let mut ours = None;
    let mut rows = Vec::new();
    for config in Config::ALL {
        // Both observers from one deployment per configuration.
        let cell = measure_cell(config, density, &workload, Observe::Both).expect("cell");
        let (memory, startup) = (cell.memory.expect("memory"), cell.startup.expect("startup"));
        let row =
            (config, mb(memory.metrics_avg), mb(memory.free_per_pod), startup.total.as_secs_f64());
        if config.is_ours() {
            ours = Some(row.1);
        }
        rows.push(row);
    }
    for (config, metrics, free, startup) in &rows {
        let marker = if config.is_ours() { "*" } else { " " };
        println!(
            "{marker}{:<27} {:>12.2} {:>12.2} {:>12.2}",
            config.label(),
            metrics,
            free,
            startup
        );
    }
    let ours = ours.expect("ours measured");
    println!("\nmemory vs ours (metrics-server), {density} pods:");
    for (config, metrics, _, _) in &rows {
        if !config.is_ours() {
            println!(
                "  {:<28} ours is {:>5.1}% lower",
                config.label(),
                (1.0 - ours / metrics) * 100.0
            );
        }
    }
}
