//! The containerd Sandbox API / Kuasar future-integration (paper §V): many
//! Wasm containers hosted by ONE sandbox process per pod, compared against
//! the paper's WAMR-crun (one engine per container process).
//!
//! With the paper's 1-container-per-pod experiments the two integration
//! points are nearly equivalent; with multi-container pods the sandboxer
//! amortizes the engine baseline — the "new iteration of our benchmarking
//! and integration work" the paper anticipates.
//!
//! Run with: `cargo run --release --example sandbox_api`

use memwasm::container_runtimes::handler::PauseHandler;
use memwasm::container_runtimes::profile::CRUN;
use memwasm::container_runtimes::{LowLevelRuntime, RuntimeCtx};
use memwasm::containerd_sim::WasmSandboxer;
use memwasm::engines::EngineKind;
use memwasm::harness::mb;
use memwasm::oci_spec_lite::{Bundle, ImageStore, RuntimeSpec};
use memwasm::simkernel::Kernel;
use memwasm::wamr_crun::{WamrCrunConfig, WamrHandler};
use memwasm::workloads::{wasm_microservice_image, MicroserviceConfig};

const CONTAINERS_PER_POD: usize = 6;

fn main() {
    let cluster = memwasm::k8s_sim::Cluster::bootstrap().expect("cluster");
    let kernel = cluster.kernel().clone();
    let mut store = ImageStore::new();
    let image = store
        .register(&kernel, wasm_microservice_image("svc:v1", &MicroserviceConfig::default()))
        .expect("image")
        .clone();

    // --- A: the paper's integration — one WAMR-crun container process per
    // container, all in one pod cgroup.
    let pod_a = kernel.cgroup_create(cluster.kubepods(), "pod-crun").unwrap();
    let mut rt = LowLevelRuntime::new(kernel.clone(), &CRUN);
    rt.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    rt.register_handler(Box::new(PauseHandler));
    let ctx = RuntimeCtx { runtime_cgroup: cluster.system_cgroup() };
    for i in 0..CONTAINERS_PER_POD {
        let id = format!("a{i}");
        let mut spec = RuntimeSpec::for_command(&id, image.command());
        for (k, v) in &image.config.annotations {
            spec.annotations.insert(k.clone(), v.clone());
        }
        let bundle = Bundle::create(&kernel, &id, &image, &spec).unwrap();
        let mut c = rt.create(&ctx, &id, &bundle, pod_a).unwrap();
        rt.start(&ctx, &mut c, &bundle).unwrap();
    }
    let a = kernel.cgroup_working_set(pod_a).unwrap();

    // --- B: the Sandbox API — one sandbox process hosting every container.
    let pod_b = kernel.cgroup_create(cluster.kubepods(), "pod-sandbox").unwrap();
    let sandboxer = WasmSandboxer::new(kernel.clone(), EngineKind::Wamr);
    let mut sandbox = sandboxer.create_sandbox("pod-sandbox", pod_b).unwrap();
    for i in 0..CONTAINERS_PER_POD {
        sandboxer.add_container(&mut sandbox, &format!("b{i}"), &image).unwrap();
    }
    assert!(sandbox.containers().iter().all(|c| c.stdout == b"microservice ready\n"));
    let b = kernel.cgroup_working_set(pod_b).unwrap();

    println!("{CONTAINERS_PER_POD} Wasm containers in one pod:");
    println!("  WAMR-crun (engine per container):   {:>7.2} MB pod working set", mb(a));
    println!("  Sandbox API (one engine per pod):   {:>7.2} MB pod working set", mb(b));
    println!(
        "  sandboxer saves {:.1}% by amortizing the engine baseline + process\n\
         overhead across the pod's containers",
        (1.0 - b as f64 / a as f64) * 100.0
    );
    println!(
        "\nAt the paper's 1 container/pod the difference shrinks to the\n\
         process/pause overhead — matching §V's assessment that the Sandbox\n\
         API 'could provide significant real-world improvements' for denser\n\
         pod shapes.",
    );
    let _ = Kernel::ROOT_CGROUP;
}
