//! Using the Wasm core directly: build a module programmatically, run it on
//! both execution tiers, and compare their memory/speed trade-off — the
//! engine-level mechanism behind the paper's results, without any container
//! machinery.
//!
//! Run with: `cargo run --example wasm_embedding`

use std::sync::Arc;

use memwasm::wasm_core::{
    decode_module, validate_module, ExecTier, FuncType, Imports, Instance, InstanceConfig,
    ModuleBuilder, ValType, Value,
};

fn main() {
    // A module computing gcd(a, b), assembled with the builder.
    let mut b = ModuleBuilder::new();
    let sig = FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]);
    let gcd = b.func(sig, |f| {
        use memwasm::wasm_core::types::BlockType;
        use memwasm::wasm_core::Instruction as I;
        f.block(BlockType::Empty, |f| {
            f.loop_(BlockType::Empty, |f| {
                // if b == 0 { break }
                f.local_get(1).op(I::I32Eqz).br_if(1);
                // (a, b) = (b, a % b)
                let t = 1; // reuse param slot via a temp pattern
                let _ = t;
                let tmp = f.local(ValType::I32);
                f.local_get(1).local_set(tmp);
                f.local_get(0).local_get(1).op(I::I32RemU).local_set(1);
                f.local_get(tmp).local_set(0);
                f.br(0);
            });
        });
        f.local_get(0);
    });
    b.export_func("gcd", gcd);
    let bytes = b.build_bytes();
    println!("module binary: {} bytes", bytes.len());

    let module = Arc::new(decode_module(bytes).expect("decode"));
    validate_module(&module).expect("validate");

    for tier in [ExecTier::InPlace, ExecTier::Lowered] {
        let mut inst = Instance::instantiate(
            Arc::clone(&module),
            Imports::new(),
            InstanceConfig { tier, ..Default::default() },
        )
        .expect("instantiate");
        let out = inst.invoke("gcd", &[Value::I32(3528), Value::I32(3780)]).expect("run");
        let stats = inst.stats();
        println!(
            "{tier:?}: gcd(3528, 3780) = {:?} | instrs {} | side-tables {} B | lowered code {} B",
            out[0], stats.instrs_retired, stats.side_table_bytes, stats.lowered_bytes
        );
    }
    println!(
        "\nIn-place interpretation (WAMR's strategy) keeps per-instance memory\n\
         to a few bytes of control side-tables; the lowered tier (Wasmtime/\n\
         Wasmer/WasmEdge strategy) trades an order of magnitude more memory\n\
         for faster execution — multiplied by 400 containers, that is the\n\
         paper's headline result."
    );
}
