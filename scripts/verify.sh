#!/usr/bin/env bash
# Tier-1 verification entrypoint: everything a PR must keep green.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== lint: process creation goes through ProcessImage =="
# Outside simkernel (which owns the primitives), non-test code must build
# processes via simkernel::image::ProcessImage, not raw kernel.spawn /
# mmap_labeled. Test modules (everything from '#[cfg(test)]' down, by the
# repo's tests-at-end convention) and comment lines are exempt.
violations=0
for f in $(grep -rlE 'kernel\.spawn\(|\.mmap_labeled\(' crates/*/src --include='*.rs' | grep -v '^crates/simkernel/' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE 'kernel\.spawn\(|\.mmap_labeled\(' | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: direct kernel.spawn/mmap_labeled call site(s) found; use simkernel::image::ProcessImage" >&2
  exit 1
fi

echo "== lint: fault-returning simkernel APIs must propagate errors =="
# Any simkernel call that can return KernelError::FaultInjected must be
# propagated (`?`) or matched in non-test code, never unwrap()/expect()ed:
# a seeded fault plan would otherwise panic the stack instead of reaching
# the kubelet's recovery path. Same tests-at-end/comment exemptions as
# above.
fault_apis='\.(build|touch|read_file|charge_anon|map_shared|map_cow|charge_heap)\([^)]*\)[[:space:]]*\.(unwrap|expect)\('
violations=0
for f in $(grep -rlE "$fault_apis" crates/*/src --include='*.rs' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE "$fault_apis" | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: unwrap()/expect() on a fault-returning simkernel API; propagate the error so fault plans stay recoverable" >&2
  exit 1
fi

echo "== lint: hard kills go through the kubelet watchdog path =="
# Containerd::interrupt_pod (epoch interrupt + SIGKILL + reap + lifecycle
# fail) is the only sanctioned hard-kill verb, and only the kubelet may
# call it: from the liveness-kill path and from the grace-period
# escalation in remove_pod. New call sites elsewhere would bypass the
# SIGTERM → grace → SIGKILL discipline. Same tests-at-end/comment
# exemptions as above; the definition site (containerd's cri.rs) is
# exempt too.
violations=0
for f in $(grep -rlF '.interrupt_pod(' crates/*/src --include='*.rs' \
    | grep -v '^crates/containerd/src/cri.rs$' \
    | grep -v '^crates/k8s/src/kubelet.rs$' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nF '.interrupt_pod(' | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: direct interrupt_pod call site(s) outside the kubelet; hard kills must ride the liveness/grace-period path" >&2
  exit 1
fi

echo "== lint: cgroup charge/limit verbs ride their sanctioned choke points =="
# Cgroup CPU charging and limit-setting are accounting choke points: guest
# CPU is charged once per execution (engines' exec pipeline), and cpu/io
# limits are applied once per pod sync (the kubelet). Call sites anywhere
# else would double-charge or bypass the pod-spec path — page/byte charges
# must never reach cgroup accounting around those verbs. Same
# tests-at-end/comment exemptions as above; simkernel (the definition
# site) is exempt.
cgroup_verbs='\.cgroup_charge_cpu\(|\.cgroup_set_cpu_max\(|\.cgroup_set_io_read_budget\('
violations=0
for f in $(grep -rlE "$cgroup_verbs" crates/*/src --include='*.rs' \
    | grep -v '^crates/simkernel/' \
    | grep -v '^crates/engines/src/exec.rs$' \
    | grep -v '^crates/k8s/src/kubelet.rs$' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE "$cgroup_verbs" | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: cgroup charge/limit call site(s) outside the exec pipeline / kubelet sync; charges must not bypass cgroup accounting" >&2
  exit 1
fi

echo "== lint: pod placement goes through the scheduler =="
# Placement is the scheduler's monopoly: outside crates/k8s (where the
# cluster drives kubelets through Scheduler::place), non-test code must
# never call kubelet.manage_pod / kubelet.sync_pod directly — harness and
# example code would otherwise bypass policy scoring, feasibility checks
# and the placement determinism the sweep tables pin. Same
# tests-at-end/comment exemptions as above.
placement_verbs='\.manage_pod\(|\.sync_pod\('
violations=0
for f in $(grep -rlE "$placement_verbs" crates/*/src examples src --include='*.rs' \
    | grep -v '^crates/k8s/' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE "$placement_verbs" | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: direct manage_pod/sync_pod call site(s) outside crates/k8s; placement must go through the scheduler" >&2
  exit 1
fi

echo "== lint: node-kill verbs stay inside the cluster layer =="
# Node::crash / Node::fence / Kernel::power_off are the ungraceful-death
# primitives; only crates/k8s (the cluster drives them through crash_node
# and the lease tick) may call them — harness and example code must go
# through Cluster::crash_node/restart_node/partition_node so lease
# bookkeeping, fencing and eviction stay consistent. simkernel (the
# power_off definition site) is exempt. Same tests-at-end/comment
# exemptions as above.
kill_verbs='\.crash\(|\.fence\(|\.power_off\('
violations=0
for f in $(grep -rlE "$kill_verbs" crates/*/src examples src --include='*.rs' \
    | grep -v '^crates/k8s/' \
    | grep -v '^crates/simkernel/' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE "$kill_verbs" | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: node-kill verb call site(s) outside crates/k8s; ungraceful death must go through Cluster::crash_node and the lease tick" >&2
  exit 1
fi

echo "== smoke: examples/quickstart =="
cargo run --release --offline --example quickstart >/dev/null

echo "== smoke: chaos sweep + hung-guest watchdog scenario (--smoke plan) =="
cargo run --release --offline -p harness --bin chaos -- --smoke >/dev/null

echo "== smoke: multi-node drain (3 nodes, drain one, controller reconverges) =="
# A spread deployment over 3 nodes, one node drained: every victim must be
# rescheduled by the controller and come back Running+ready on a survivor.
cargo run --release --offline -p harness --bin chaos -- --multinode-smoke >/dev/null

echo "== smoke: node crash (3 nodes, power-fail one, lease-driven recovery) =="
# A 6-replica deployment over 3 nodes, one node power-failed: the lease
# must expire, the controller evict and re-home the lost replicas, and
# the deployment reconverge on the survivors with nothing leaked.
cargo run --release --offline -p harness --bin chaos -- --node-crash-smoke >/dev/null

echo "== smoke: fault-schedule explorer (12 seeded schedules) =="
# Seeded schedules of {crash, restart, partition, heal}; every schedule
# must reconverge and pass the invariants, violations shrink to a minimal
# failing prefix (exit 1 if any survive).
cargo run --release --offline -p harness --bin chaos -- --explore --schedules 12 >/dev/null

echo "== smoke: adversarial isolation (1 attacker × 4 kinds vs 4 victims) =="
# Containment contracts on the contribution config: every attacker
# throttled / OOM-killed / backed-off / pressure-evicted, victims Running
# and ready, and the zero-attacker baseline byte-identical across runs.
cargo run --release --offline -p harness --bin chaos -- --isolation-smoke >/dev/null

echo "== lint: overload-control verbs stay inside k8s::service =="
# Deadline propagation, shedding and breaker bookkeeping are the service
# layer's monopoly: outside crates/k8s, non-test code must consume the
# Service API (route/admit/try_start/complete) rather than poking breaker
# state machines, retry-budget token accounting or shed taxonomies
# directly — the traffic harness would otherwise fork its own overload
# policy and drift from the one the contracts pin. Same tests-at-end/
# comment exemptions as above.
service_verbs='ShedReason::|BreakerState::|\.on_failure\(|\.on_success\(|\.try_withdraw\(|\.admits\(|\.backoff_for\('
violations=0
for f in $(grep -rlE "$service_verbs" crates/*/src examples src --include='*.rs' \
    | grep -v '^crates/k8s/' || true); do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$f" \
    | grep -nE "$service_verbs" | sed "s|^|$f:|" || true)
  if [ -n "$hits" ]; then
    echo "$hits"
    violations=1
  fi
done
if [ "$violations" -ne 0 ]; then
  echo "lint: overload-control verb call site(s) outside crates/k8s; shedding/breaker/budget policy lives in k8s::service" >&2
  exit 1
fi

echo "== smoke: traffic (steady cell + overload-and-recover + rollout/HPA scenario) =="
# The request path under open-loop load on the contribution config: the
# steady cell serves, the overload contract holds (goodput floor at 3×,
# bounded p99 for admitted requests, p99 reconverges after the load
# drops, control arm with the retry budget disabled demonstrably
# degrades), and the live-traffic rollout + HPA scenario passes.
cargo run --release --offline -p harness --bin traffic -- --smoke >/dev/null

echo "== perf smoke: fig8 grid, serial vs 2 workers =="
# Fails if the 2-worker driver pass is >10% slower than the serial pass —
# catches reintroduced shared-state serialization in harness::parallel.
cargo run --release --offline -p harness --bin bench_trajectory -- --perf-smoke

echo "verify: OK"
