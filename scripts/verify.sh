#!/usr/bin/env bash
# Tier-1 verification entrypoint: everything a PR must keep green.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify: OK"
