//! # memwasm — Memory Efficient WebAssembly Containers
//!
//! A complete, from-scratch Rust reproduction of *Memory Efficient
//! WebAssembly Containers* (IPPS 2025): the WAMR-in-crun integration, every
//! substrate it runs on, and the full evaluation harness.
//!
//! ## The stack (bottom-up)
//!
//! | layer | crate | provides |
//! |---|---|---|
//! | kernel | [`simkernel`] | processes, page-level memory accounting, cgroups v2, page cache, `free(1)`, discrete-event clock |
//! | Wasm core | [`wasm_core`] | binary format, validator, in-place interpreter, lowered (JIT-style) executor |
//! | WASI | [`wasi_sys`] | args/env/preopens/stdio over the simulated VFS |
//! | engines | [`engines`] | WAMR / Wasmtime / Wasmer / WasmEdge profiles over the shared core |
//! | OCI | [`oci_spec_lite`] | runtime/image specs, bundles, a from-scratch JSON |
//! | runtimes | [`container_runtimes`] | crun / runC / youki lifecycles + the handler mechanism |
//! | **contribution** | [`wamr_crun`] | WAMR embedded in crun: dlopen sharing, WASI plumbing, sandboxed in-process execution |
//! | containerd | [`containerd_sim`] | daemon, CRI, runc-v2 shim, runwasi shims |
//! | Kubernetes | [`k8s_sim`] | kubelet (500-pod extension), pod lifecycle, metrics-server |
//! | baseline | [`pyrt`] | a mini-Python interpreter with CPython-scale footprint |
//! | workloads | [`workloads`] | the microservice module/script generators |
//! | experiments | [`harness`] | per-figure drivers and the paper's claims as executable checks |
//!
//! ## Quickstart
//!
//! ```
//! use memwasm::harness::{measure_memory, Config, Workload};
//!
//! let sample = measure_memory(Config::WamrCrun, 4, &Workload::default()).unwrap();
//! assert!(sample.metrics_avg > 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! benchmarks regenerating each table and figure (in-tree timing harness;
//! no external bench dependency).

pub use container_runtimes;
pub use containerd_sim;
pub use engines;
pub use harness;
pub use k8s_sim;
pub use oci_spec_lite;
pub use pyrt;
pub use simkernel;
pub use wamr_crun;
pub use wasi_sys;
pub use wasm_core;
pub use workloads;
