//! Effectiveness of the process-wide module-artifact cache across a figure
//! sweep: a grid re-deploys the same handful of workload images hundreds of
//! times, so nearly every decode+validate should be a cache hit.
//!
//! This lives in its own integration-test binary (one test function) so the
//! global cache counters aren't perturbed by unrelated tests running in the
//! same process.

use memwasm::harness::{figures, Config, Workload};
use memwasm::wasm_core::ArtifactCache;

#[test]
fn artifact_cache_hit_rate_exceeds_90_percent_across_a_sweep() {
    let w = Workload::light();
    let cache = ArtifactCache::global();
    cache.clear();

    // A reduced fig10-shaped sweep: all nine configurations × two
    // densities, both observers' samples from each deployment.
    figures::fig10(&w, &[4, 10]).unwrap();

    let stats = cache.stats();
    let total = stats.hits + stats.misses;
    // 7 Wasm configs × (1 warmup + 4 + 10 pods) = 105 decode requests for
    // one distinct module byte string.
    assert!(total >= 100, "expected a full sweep of lookups, saw {total}");
    assert_eq!(stats.misses, 1, "one distinct module in the sweep: {stats:?}");
    assert!(
        stats.hit_rate() > 0.9,
        "hit rate {:.3} (hits {}, misses {})",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    assert_eq!(cache.len(), 1);
}
