//! Fault-injection integration tests: the full stack under the chaos
//! harness's recovery contract.
//!
//! The hard invariant tested first: a *zero-fault* plan must leave every
//! observable of a deployment — memory observers, startup makespan,
//! per-pod traces and stdout — byte-identical to a cluster that never had
//! a plan armed at all. Everything the fault model adds must be pay-as-
//! you-go.

use memwasm::harness::chaos::{check_outcome, run_config, ChaosPlan};
use memwasm::harness::{new_cluster, warmup, Config, Workload};
use memwasm::k8s_sim::{Cluster, DeployOpts, PodPhase, RestartPolicy};
use memwasm::simkernel::{Duration, FaultPlan, FaultSite, MapKind};

fn wamr_cluster(w: &Workload) -> Cluster {
    let mut cluster = new_cluster(&[Config::WamrCrun], w).unwrap();
    warmup(&mut cluster, Config::WamrCrun).unwrap();
    cluster
}

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let w = Workload::light();
    let deploy = |armed: bool| {
        let mut cluster = wamr_cluster(&w);
        if armed {
            // A seeded plan with every rate at zero: armed but inert.
            cluster.kernel.set_fault_plan(FaultPlan::new(0xDEAD_BEEF));
        }
        let d = cluster
            .deploy("svc", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 3)
            .unwrap();
        let metrics = cluster.average_working_set(&d).unwrap();
        let startup = cluster.measure_startup(&[&d]).total();
        let free = cluster.free();
        let pods: Vec<_> =
            d.pods.iter().map(|p| (p.trace.clone(), p.stdout.clone(), p.phase)).collect();
        (metrics, startup, free.used, free.used_with_cache(), pods)
    };
    assert_eq!(deploy(false), deploy(true));
}

#[test]
fn injected_sync_fault_becomes_crashloop_then_recovers() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    // Exactly one fault: the next spawn (the pod's shim) fails.
    cluster.kernel.set_fault_plan(FaultPlan::new(3).fail_call(FaultSite::Spawn, 0));
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, memory_limit: None },
        )
        .unwrap();
    let entry = cluster.kubelet.managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::CrashLoopBackOff);
    assert_eq!(entry.failures, 1);
    assert_eq!(cluster.stats().crash_loop, 1);

    // The backoff schedule: due 10s after the failure, not before.
    cluster.kernel.advance(Duration::from_secs(5));
    assert!(cluster.reconcile().quiet(), "restart must wait out the backoff");
    cluster.kernel.advance(Duration::from_secs(5));
    let report = cluster.reconcile();
    assert_eq!(report.restarted, vec!["svc-0".to_string()]);

    let entry = cluster.kubelet.managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!((entry.restarts, entry.failures), (1, 0));
    assert_eq!(entry.stdout, b"microservice ready\n");
    assert_eq!(cluster.stats().running, 1);
    cluster.teardown_managed().unwrap();
}

#[test]
fn engine_instantiate_fault_recovers_on_the_runwasi_path() {
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::ShimWasmtime], &w).unwrap();
    warmup(&mut cluster, Config::ShimWasmtime).unwrap();
    cluster.kernel.set_fault_plan(FaultPlan::new(9).fail_call(FaultSite::EngineInstantiate, 0));
    cluster
        .deploy_with(
            "svc",
            Config::ShimWasmtime.image_ref(),
            Config::ShimWasmtime.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, memory_limit: None },
        )
        .unwrap();
    assert_eq!(cluster.kubelet.managed_pod("svc-0").unwrap().phase, PodPhase::CrashLoopBackOff);
    assert_eq!(cluster.kernel.faults_injected(FaultSite::EngineInstantiate), 1);
    cluster.kernel.advance(Duration::from_secs(10));
    let report = cluster.reconcile();
    assert_eq!(report.restarted.len(), 1);
    let entry = cluster.kubelet.managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!(entry.stdout, b"microservice ready\n");
    cluster.teardown_managed().unwrap();
}

#[test]
fn oom_killed_pod_is_detected_and_restarted() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, memory_limit: None },
        )
        .unwrap();
    let kernel = cluster.kernel.clone();
    let pod_cgroup = cluster.containerd.sandbox("svc-0").unwrap().pod_cgroup;

    // Clamp the pod just above its current usage, then have a memory hog
    // in the pod blow through it: the kernel must OOM-kill the pod's
    // largest consumer (the container workload), not the hog.
    let ws = kernel.cgroup_working_set(pod_cgroup).unwrap();
    kernel.cgroup_set_limit(pod_cgroup, Some(ws + (1 << 20))).unwrap();
    let hog = kernel.spawn("hog", pod_cgroup).unwrap();
    let map = kernel.mmap(hog, 4 << 20, MapKind::AnonPrivate).unwrap();
    kernel.touch(hog, map, 4 << 20).unwrap();
    assert!(kernel.cgroup_oom_events(pod_cgroup).unwrap() >= 1);
    assert!(cluster.containerd.pod_oom_killed("svc-0"), "a pod process was OOM-killed");
    // The hog is ours, not the pod's: clean it up before recovery runs,
    // and lift the limit so the restart can fit.
    kernel.exit(hog, 0).unwrap();
    kernel.reap(hog).unwrap();

    let report = cluster.reconcile();
    assert_eq!(report.oom_killed, vec!["svc-0".to_string()]);
    let entry = cluster.kubelet.managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::OomKilled);
    assert_eq!(cluster.stats().oom_killed, 1);

    cluster.kernel.advance(Duration::from_secs(10));
    let report = cluster.reconcile();
    assert_eq!(report.restarted, vec!["svc-0".to_string()]);
    let entry = cluster.kubelet.managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!(entry.restarts, 1);
    cluster.teardown_managed().unwrap();
    assert_eq!(cluster.stats().pods_managed, 0);
}

#[test]
fn remove_pod_is_idempotent_on_a_crashlooping_pod() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster.kernel.set_fault_plan(FaultPlan::new(11).fail_call(FaultSite::Spawn, 0));
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, memory_limit: None },
        )
        .unwrap();
    assert_eq!(cluster.stats().crash_loop, 1);
    // Deleting a pod that failed mid-sync (nothing materialized) succeeds,
    // and deleting it again is a no-op.
    cluster.kubelet.remove_pod(&mut cluster.containerd, "svc-0").unwrap();
    cluster.kubelet.remove_pod(&mut cluster.containerd, "svc-0").unwrap();
    assert!(cluster.kubelet.managed_pod("svc-0").is_none());
    assert_eq!(cluster.stats().crash_loop, 0);
}

#[test]
fn seeded_chaos_converges_and_leaks_nothing() {
    // The full recovery contract, end to end, on the paper's contribution
    // config: aggressive seeded faults, reconcile to steady state, then a
    // fault-free teardown back to baseline.
    let w = Workload::light();
    let plan = ChaosPlan::smoke(0x5EED);
    let outcome = run_config(Config::WamrCrun, &w, &plan).unwrap();
    assert!(outcome.injected > 0);
    check_outcome(&outcome, &plan).unwrap();
}
