//! Fault-injection integration tests: the full stack under the chaos
//! harness's recovery contract.
//!
//! The hard invariant tested first: a *zero-fault* plan must leave every
//! observable of a deployment — memory observers, startup makespan,
//! per-pod traces and stdout — byte-identical to a cluster that never had
//! a plan armed at all. Everything the fault model adds must be pay-as-
//! you-go.

use std::sync::Mutex;

use memwasm::harness::chaos::{
    check_hung_outcome, check_outcome, hung_liveness_probe, run_config, run_hung_guest, ChaosPlan,
    HUNG_IMAGE_REF,
};
use memwasm::harness::isolation::{
    self, attacker_liveness_probe, isolation_sweep, observe_victims, run_tenants,
    victim_readiness_probe, Attacker, IsolationPlan, ATTACKER_CPU_MAX, ATTACKER_IO_BUDGET,
    ATTACKER_MEMORY_LIMIT, ISOLATION_CORES,
};
use memwasm::harness::{new_cluster, warmup, Config, Workload};
use memwasm::k8s_sim::{Cluster, DeployOpts, NodeConfig, PodPhase, ProbeSpec, RestartPolicy};
use memwasm::simkernel::{Duration, FaultPlan, FaultSite, KernelConfig, MapKind, Phase};
use memwasm::workloads::hung_service_image;

/// Serializes the tests that mutate the process-wide `HARNESS_THREADS`
/// environment variable (shared with every test in this binary).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn wamr_cluster(w: &Workload) -> Cluster {
    let mut cluster = new_cluster(&[Config::WamrCrun], w).unwrap();
    warmup(&mut cluster, Config::WamrCrun).unwrap();
    cluster
}

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let w = Workload::light();
    let deploy = |armed: bool| {
        let mut cluster = wamr_cluster(&w);
        if armed {
            // A seeded plan with every rate at zero: armed but inert.
            cluster.kernel().set_fault_plan(FaultPlan::new(0xDEAD_BEEF));
        }
        let d = cluster
            .deploy("svc", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 3)
            .unwrap();
        let metrics = cluster.average_working_set(&d).unwrap();
        let startup = cluster.measure_startup(&[&d]).total();
        let free = cluster.free();
        let pods: Vec<_> =
            d.pods.iter().map(|p| (p.trace.clone(), p.stdout.clone(), p.phase)).collect();
        (metrics, startup, free.used, free.used_with_cache(), pods)
    };
    assert_eq!(deploy(false), deploy(true));
}

#[test]
fn injected_sync_fault_becomes_crashloop_then_recovers() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    // Exactly one fault: the next spawn (the pod's shim) fails.
    cluster.kernel().set_fault_plan(FaultPlan::new(3).fail_call(FaultSite::Spawn, 0));
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();
    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::CrashLoopBackOff);
    assert_eq!(entry.failures, 1);
    assert_eq!(cluster.stats().crash_loop, 1);

    // The backoff schedule: due 10s after the failure, not before.
    cluster.kernel().advance(Duration::from_secs(5));
    assert!(cluster.reconcile().quiet(), "restart must wait out the backoff");
    cluster.kernel().advance(Duration::from_secs(5));
    let report = cluster.reconcile();
    assert_eq!(report.restarted, vec!["svc-0".to_string()]);

    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!((entry.restarts, entry.failures), (1, 0));
    assert_eq!(entry.stdout, b"microservice ready\n");
    assert_eq!(cluster.stats().running, 1);
    cluster.teardown_managed().unwrap();
}

#[test]
fn engine_instantiate_fault_recovers_on_the_runwasi_path() {
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::ShimWasmtime], &w).unwrap();
    warmup(&mut cluster, Config::ShimWasmtime).unwrap();
    cluster.kernel().set_fault_plan(FaultPlan::new(9).fail_call(FaultSite::EngineInstantiate, 0));
    cluster
        .deploy_with(
            "svc",
            Config::ShimWasmtime.image_ref(),
            Config::ShimWasmtime.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();
    assert_eq!(cluster.kubelet().managed_pod("svc-0").unwrap().phase, PodPhase::CrashLoopBackOff);
    assert_eq!(cluster.kernel().faults_injected(FaultSite::EngineInstantiate), 1);
    cluster.kernel().advance(Duration::from_secs(10));
    let report = cluster.reconcile();
    assert_eq!(report.restarted.len(), 1);
    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!(entry.stdout, b"microservice ready\n");
    cluster.teardown_managed().unwrap();
}

#[test]
fn oom_killed_pod_is_detected_and_restarted() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();
    let kernel = cluster.kernel().clone();
    let pod_cgroup = cluster.containerd().sandbox("svc-0").unwrap().pod_cgroup;

    // Clamp the pod just above its current usage, then have a memory hog
    // in the pod blow through it: the kernel must OOM-kill the pod's
    // largest consumer (the container workload), not the hog.
    let ws = kernel.cgroup_working_set(pod_cgroup).unwrap();
    kernel.cgroup_set_limit(pod_cgroup, Some(ws + (1 << 20))).unwrap();
    let hog = kernel.spawn("hog", pod_cgroup).unwrap();
    let map = kernel.mmap(hog, 4 << 20, MapKind::AnonPrivate).unwrap();
    kernel.touch(hog, map, 4 << 20).unwrap();
    assert!(kernel.cgroup_oom_events(pod_cgroup).unwrap() >= 1);
    assert!(cluster.containerd().pod_oom_killed("svc-0"), "a pod process was OOM-killed");
    // The hog is ours, not the pod's: clean it up before recovery runs,
    // and lift the limit so the restart can fit.
    kernel.exit(hog, 0).unwrap();
    kernel.reap(hog).unwrap();

    let report = cluster.reconcile();
    assert_eq!(report.oom_killed, vec!["svc-0".to_string()]);
    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::OomKilled);
    assert_eq!(cluster.stats().oom_killed, 1);

    cluster.kernel().advance(Duration::from_secs(10));
    let report = cluster.reconcile();
    assert_eq!(report.restarted, vec!["svc-0".to_string()]);
    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!(entry.restarts, 1);
    cluster.teardown_managed().unwrap();
    assert_eq!(cluster.stats().pods_managed, 0);
}

#[test]
fn remove_pod_is_idempotent_on_a_crashlooping_pod() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster.kernel().set_fault_plan(FaultPlan::new(11).fail_call(FaultSite::Spawn, 0));
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();
    assert_eq!(cluster.stats().crash_loop, 1);
    // Deleting a pod that failed mid-sync (nothing materialized) succeeds,
    // and deleting it again is a no-op.
    cluster.remove_pod("svc-0").unwrap();
    cluster.remove_pod("svc-0").unwrap();
    assert!(cluster.kubelet().managed_pod("svc-0").is_none());
    assert_eq!(cluster.stats().crash_loop, 0);
}

#[test]
fn seeded_chaos_converges_and_leaks_nothing() {
    // The full recovery contract, end to end, on the paper's contribution
    // config: aggressive seeded faults, reconcile to steady state, then a
    // fault-free teardown back to baseline.
    let w = Workload::light();
    let plan = ChaosPlan::smoke(0x5EED);
    let outcome = run_config(Config::WamrCrun, &w, &plan).unwrap();
    assert!(outcome.injected_total() > 0);
    check_outcome(&outcome, &plan).unwrap();
}

#[test]
fn hung_guest_is_detected_interrupted_restarted_and_converges() {
    // The watchdog recovery contract, end to end: every pod of the initial
    // deployment wedges on its epoch budget, the liveness probe detects it,
    // the kubelet interrupts the guest through the epoch clock and parks
    // the pod in CrashLoopBackOff, and the post-backoff restart comes up
    // Running and ready — with flaky probe RPCs injected on top.
    let w = Workload::light();
    let plan = ChaosPlan::smoke(0xD06);
    let outcome = run_hung_guest(Config::WamrCrun, &w, &plan).unwrap();
    assert_eq!(outcome.wedged, plan.pods, "every first start must wedge");
    assert!(outcome.probe_kills as usize >= plan.pods);
    check_hung_outcome(&outcome, &plan).unwrap();
}

#[test]
fn spurious_probe_faults_below_threshold_do_not_kill() {
    // A single injected probe-RPC fault against a healthy pod: one failure
    // is below the liveness failureThreshold, and the next success resets
    // the counter — the pod must never be killed or restarted.
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster.kernel().set_fault_plan(FaultPlan::new(21).fail_call(FaultSite::Probe, 0));
    let liveness =
        ProbeSpec { period: Duration::from_secs(2), failure_threshold: 3, ..ProbeSpec::default() };
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts {
                restart: RestartPolicy::Always,
                liveness_probe: Some(liveness),
                ..Default::default()
            },
        )
        .unwrap();
    for round in 0..4 {
        cluster.kernel().advance(Duration::from_secs(2));
        let report = cluster.reconcile();
        assert!(report.probe_killed.is_empty(), "round {round} must not kill");
        assert!(report.restarted.is_empty());
    }
    assert_eq!(cluster.kernel().faults_injected(FaultSite::Probe), 1, "the fault was drawn");
    let entry = cluster.kubelet().managed_pod("svc-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Running);
    assert_eq!((entry.restarts, entry.failures), (0, 0));
    cluster.teardown_managed().unwrap();
}

#[test]
fn clean_pod_termination_advances_no_simulated_time() {
    // SIGTERM to a responsive pod is honored promptly: the grace period
    // never elapses on the DES clock, which is what keeps the paper's
    // figure paths (deploy → measure → teardown) byte-identical.
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    cluster
        .deploy_with(
            "svc",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();
    let before = cluster.kernel().now();
    let trace = cluster.remove_pod_traced("svc-0").unwrap();
    assert_eq!(cluster.kernel().now(), before, "no grace period for a clean pod");
    assert!(
        trace.entries().iter().any(|(p, _)| *p == Phase::Terminating),
        "SIGTERM work is recorded under the Terminating phase"
    );
    assert!(cluster.kubelet().managed_pod("svc-0").is_none());
}

#[test]
fn wedged_pod_termination_rides_out_the_grace_period_then_sigkills() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(&w);
    let procs_before = cluster.kernel().live_procs();
    // A guest that will not be ready for a minute: its first start wedges
    // on the 4 s watchdog budget the liveness probe derives.
    let ready_after = cluster.kernel().now() + Duration::from_secs(60);
    cluster.pull_image(hung_service_image(HUNG_IMAGE_REF, ready_after.as_nanos())).unwrap();
    let grace = Duration::from_secs(3);
    cluster
        .deploy_with(
            "hung",
            HUNG_IMAGE_REF,
            Config::WamrCrun.class_name(),
            1,
            DeployOpts {
                restart: RestartPolicy::Always,
                liveness_probe: Some(hung_liveness_probe()),
                termination_grace: Some(grace),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(cluster.containerd().pod_wedged("hung-0"), "the guest must wedge at deploy");

    let before = cluster.kernel().now();
    let trace = cluster.remove_pod_traced("hung-0").unwrap();
    assert_eq!(
        cluster.kernel().now().since(before),
        grace,
        "a wedged guest rides out exactly the grace period"
    );
    assert!(trace.entries().iter().any(|(p, _)| *p == Phase::Terminating));
    assert!(cluster.kubelet().managed_pod("hung-0").is_none());
    assert_eq!(cluster.kernel().live_procs(), procs_before, "SIGKILL reaped everything");
}

#[test]
fn zero_attacker_isolation_run_matches_plain_supervised_deploy() {
    // The isolation baseline must be a pure observer: a cluster with the
    // sustained-pressure eviction rule armed (but never tripped) and the
    // cgroup controllers present (but never set) yields victim observables
    // byte-identical to a plain supervised deploy on a stock node of the
    // same shape — the zero-attacker path costs nothing.
    let w = Workload::light();
    let plan = IsolationPlan { victims: 3, max_rounds: 8 };
    let baseline = run_tenants(Config::WamrCrun, &w, &plan, None).unwrap();

    // The plain path: same kernel shape, *no* pressure-eviction rule, the
    // pre-existing deploy/reconcile loop, measured the same way.
    let kcfg = KernelConfig { cores: ISOLATION_CORES, ..KernelConfig::default() };
    let mut cluster = Cluster::bootstrap_with(kcfg, NodeConfig::paper_extension()).unwrap();
    Config::WamrCrun.install(&mut cluster, &w).unwrap();
    warmup(&mut cluster, Config::WamrCrun).unwrap();
    cluster
        .deploy_with(
            "victim",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            plan.victims,
            DeployOpts {
                restart: RestartPolicy::Always,
                readiness_probe: Some(victim_readiness_probe()),
                ..Default::default()
            },
        )
        .unwrap();
    let mut rounds = 0;
    while !cluster.kubelet().settled() && rounds < plan.max_rounds {
        let now = cluster.kernel().now();
        match cluster.kubelet().next_deadline() {
            Some(deadline) if deadline > now => cluster.kernel().advance(deadline - now),
            _ => cluster.kernel().advance(Duration::from_secs(1)),
        }
        cluster.reconcile();
        rounds += 1;
    }
    let plain = observe_victims(&cluster, "victim").unwrap();

    assert_eq!(baseline.victims, plain, "armed-but-idle controllers must not perturb victims");
    assert_eq!(baseline.rounds, rounds);
}

#[test]
fn pressure_eviction_is_a_distinct_cluster_stats_reason() {
    // Satellite contract: sustained cpu/io throttle pressure routes
    // through the kubelet's eviction with its own reason — the thrasher
    // lands in `pressure_evicted`, never in the memory-pressure `evicted`
    // bucket, while its victims keep running.
    let w = Workload::light();
    let mut cluster = isolation::isolation_cluster(Config::WamrCrun, &w).unwrap();
    cluster.kernel().set_io_model(Some(isolation::isolation_io_model()));
    let thrasher = Attacker::Thrasher;
    cluster.pull_image(thrasher.image()).unwrap();
    cluster
        .deploy_with(
            "attacker",
            thrasher.image_ref(),
            Config::WamrCrun.class_name(),
            1,
            DeployOpts {
                restart: RestartPolicy::Always,
                memory_limit: Some(ATTACKER_MEMORY_LIMIT),
                cpu_max: Some(ATTACKER_CPU_MAX),
                io_read_budget: Some(ATTACKER_IO_BUDGET),
                liveness_probe: Some(attacker_liveness_probe()),
                ..Default::default()
            },
        )
        .unwrap();
    cluster
        .deploy_with(
            "victim",
            Config::WamrCrun.image_ref(),
            Config::WamrCrun.class_name(),
            2,
            DeployOpts { restart: RestartPolicy::Always, ..Default::default() },
        )
        .unwrap();

    cluster.kernel().advance(Duration::from_secs(1));
    let report = cluster.reconcile();
    assert_eq!(report.pressure_evicted, vec!["attacker-0".to_string()]);
    assert!(report.evicted.is_empty());

    let entry = cluster.kubelet().managed_pod("attacker-0").unwrap();
    assert_eq!(entry.phase, PodPhase::Evicted);
    assert!(entry.pressure_evicted);
    assert!(entry.next_restart_at.is_none(), "pressure eviction is terminal");

    let stats = cluster.stats();
    assert_eq!(stats.pressure_evicted, 1, "distinct reason, own counter");
    assert_eq!(stats.evicted, 0, "memory-pressure bucket stays empty");
    assert_eq!(stats.running, 2, "victims keep running");
    cluster.teardown_managed().unwrap();
}

#[test]
fn isolation_score_table_is_byte_identical_across_worker_counts() {
    // Satellite contract: the chaos-sweep isolation table renders to the
    // same bytes under HARNESS_THREADS=1, 2, and 8 — cells merge in grid
    // order, so worker count changes wall-clock only.
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();
    let plan = IsolationPlan { victims: 2, max_rounds: 4 };
    let configs = [Config::WamrCrun, Config::CrunWasmtime];
    let attackers = [Attacker::Thrasher, Attacker::Balloon];

    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HARNESS_THREADS", threads);
        let (table, scores) = isolation_sweep(&configs, &attackers, &w, &plan).unwrap();
        runs.push((threads, table.to_csv().into_bytes(), table.render(), scores.len()));
    }
    std::env::remove_var("HARNESS_THREADS");

    let (_, csv1, render1, n1) = &runs[0];
    assert_eq!(*n1, configs.len() * attackers.len());
    for (threads, csv, render, n) in &runs[1..] {
        assert_eq!(csv, csv1, "isolation CSV differs at HARNESS_THREADS={threads}");
        assert_eq!(render, render1, "isolation render differs at HARNESS_THREADS={threads}");
        assert_eq!(n, n1);
    }
}

#[test]
fn balloon_attacker_is_oom_contained_with_victims_unharmed() {
    let w = Workload::light();
    let plan = IsolationPlan { victims: 2, max_rounds: 6 };
    let base = run_tenants(Config::WamrCrun, &w, &plan, None).unwrap();
    let hit = run_tenants(Config::WamrCrun, &w, &plan, Some(Attacker::Balloon)).unwrap();
    let fate = hit.fate.unwrap();
    // The ratchet dies against memory.max every time it is retried: the
    // pod never reaches Running and sits in CrashLoopBackOff.
    assert!(fate.failures > 0, "balloon must keep failing on memory.max: {fate:?}");
    assert_eq!(fate.phase, Some(PodPhase::CrashLoopBackOff));
    assert!(fate.contained());
    let s = isolation::score_runs(&base, hit);
    isolation::check_isolation(&s, &plan).unwrap();
}
