//! Multi-node determinism: scheduler placement and the cluster-scale
//! tables are pure functions of the plan — byte-identical across repeated
//! runs and across `HARNESS_THREADS` worker counts — and the calendar-
//! queue DES matches the pinned reference loop on every figure path.

use std::sync::Mutex;

use memwasm::harness::{
    cluster_scale, density_sweep, policy_ablation, run_drain, Config, ScalePlan, Workload,
};
use memwasm::k8s_sim::Policy;
use memwasm::simkernel::{Sim, TaskSpec};

/// Serializes every test that mutates the process-wide `HARNESS_THREADS`
/// environment variable — tests in one binary share the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn density_sweep_is_byte_identical_across_worker_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();
    let plan = ScalePlan::smoke();

    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HARNESS_THREADS", threads);
        let (table, samples) = density_sweep(&plan, &w).unwrap();
        runs.push((threads, table.to_csv().into_bytes(), samples));
    }
    std::env::remove_var("HARNESS_THREADS");
    let (_, csv1, samples1) = &runs[0];
    for (threads, csv, samples) in &runs[1..] {
        assert_eq!(csv, csv1, "sweep CSV bytes differ at HARNESS_THREADS={threads}");
        assert_eq!(samples, samples1, "samples differ at HARNESS_THREADS={threads}");
    }
}

#[test]
fn repeated_runs_place_identically() {
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();

    // Same plan, fresh clusters: placement and the rendered ablation table
    // must not depend on host state.
    let a = policy_ablation(Config::WamrCrun, 3, 9, &w).unwrap();
    let b = policy_ablation(Config::WamrCrun, 3, 9, &w).unwrap();
    assert_eq!(a.to_csv().into_bytes(), b.to_csv().into_bytes());

    let d1 = run_drain(Config::WamrCrun, 3, 6, &w).unwrap();
    let d2 = run_drain(Config::WamrCrun, 3, 6, &w).unwrap();
    assert_eq!(d1.placements, d2.placements);
    assert_eq!(d1.drained, d2.drained);
    assert_eq!((d1.converged, d1.ready), (d2.converged, d2.ready));
}

#[test]
fn single_node_sweep_matches_the_single_node_figure_path() {
    // A 1-node "cluster sweep" is the old single-node experiment: every
    // pod on node 0, metrics identical to the per-density figure cells.
    let w = Workload::light();
    let plan = ScalePlan {
        config: Config::WamrCrun,
        nodes: 1,
        densities: vec![5],
        policy: Policy::Spread,
    };
    let (_, samples) = density_sweep(&plan, &w).unwrap();
    assert_eq!(samples[0].min_pods_node, 5);
    assert_eq!(samples[0].max_pods_node, 5);
    let cell = memwasm::harness::measure_memory(Config::WamrCrun, 5, &w).unwrap();
    assert_eq!(samples[0].metrics_avg, cell.metrics_avg);
}

#[test]
fn calendar_queue_matches_reference_on_every_figure_path() {
    // The DES refactor's contract: for every runtime configuration's real
    // startup trace (the figure workloads, not synthetic tasks), the
    // calendar-queue loop and the pinned reference loop agree exactly —
    // same per-task times, same makespan, same event count.
    let w = Workload::light();
    for config in [Config::WamrCrun, Config::ShimWasmtime, Config::CrunPython] {
        let (cluster, d) = memwasm::harness::deploy_density(config, 8, &w).unwrap();
        let tasks: Vec<TaskSpec> = d
            .pods
            .iter()
            .map(|p| TaskSpec {
                name: p.spec.name.clone(),
                start_at: p.dispatched_at,
                steps: p.trace.steps(),
            })
            .collect();
        let sim = Sim::new(cluster.kernel().cores());
        let new = sim.run(tasks.clone());
        let old = sim.run_reference(tasks);
        assert_eq!(new.makespan, old.makespan, "{config:?}");
        assert_eq!(new.events, old.events, "{config:?}");
        assert_eq!(new.results.len(), old.results.len(), "{config:?}");
        for (n, o) in new.results.iter().zip(&old.results) {
            assert_eq!(n.id, o.id, "{config:?}");
            assert_eq!(n.started, o.started, "{config:?}/{}", n.name);
            assert_eq!(n.finished, o.finished, "{config:?}/{}", n.name);
        }
    }
}

#[test]
fn multinode_smoke_contract() {
    // The verify.sh scenario: 3 nodes, drain one, convergence on the rest.
    let w = Workload::light();
    let o = run_drain(Config::WamrCrun, 3, 6, &w).unwrap();
    assert!(o.converged, "{o:?}");
    assert_eq!(o.ready, 6);
    assert_eq!(o.pods_on_drained, 0);
    // A spread deployment put pods on the victim, so the drain was real.
    assert!(!o.drained.is_empty());
    let _ = cluster_scale::ScalePlan::smoke();
}
