//! Determinism: every experiment is bit-for-bit repeatable — no wall clock,
//! no OS randomness anywhere in the stack.

use memwasm::harness::{measure_memory, measure_startup, Config, Workload};

#[test]
fn memory_measurements_are_deterministic() {
    let w = Workload::light();
    for config in [Config::WamrCrun, Config::ShimWasmtime, Config::CrunPython] {
        let a = measure_memory(config, 6, &w).unwrap();
        let b = measure_memory(config, 6, &w).unwrap();
        assert_eq!(a.metrics_avg, b.metrics_avg, "{config:?}");
        assert_eq!(a.free_per_pod, b.free_per_pod, "{config:?}");
    }
}

#[test]
fn startup_measurements_are_deterministic() {
    let w = Workload::light();
    for config in [Config::WamrCrun, Config::ShimWasmEdge, Config::RuncPython] {
        let a = measure_startup(config, 12, &w).unwrap();
        let b = measure_startup(config, 12, &w).unwrap();
        assert_eq!(a.total, b.total, "{config:?}");
    }
}

#[test]
fn workload_binaries_are_reproducible() {
    use memwasm::workloads::{microservice_module, MicroserviceConfig};
    let a = microservice_module(&MicroserviceConfig::default());
    let b = microservice_module(&MicroserviceConfig::default());
    assert_eq!(a, b);
}
