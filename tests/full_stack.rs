//! Cross-crate integration tests: full pod lifecycles through every layer.

use memwasm::container_runtimes::handler::PauseHandler;
use memwasm::container_runtimes::profile::CRUN;
use memwasm::container_runtimes::LowLevelRuntime;
use memwasm::containerd_sim::RuntimeClass;
use memwasm::harness::{measure_memory, new_cluster, warmup, Config, Workload};
use memwasm::k8s_sim::Cluster;
use memwasm::pyrt::PythonHandler;
use memwasm::simkernel::ProcState;
use memwasm::wamr_crun::{WamrCrunConfig, WamrHandler};
use memwasm::workloads::{wasm_microservice_image, MicroserviceConfig};

#[test]
fn deploy_runs_the_real_microservice() {
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::WamrCrun], &w).unwrap();
    let d = cluster
        .deploy("svc", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 3)
        .unwrap();
    for pod in &d.pods {
        assert_eq!(pod.stdout, b"microservice ready\n", "{}", pod.spec.name);
    }
    cluster.teardown(d).unwrap();
}

#[test]
fn teardown_restores_memory_baseline() {
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::WamrCrun], &w).unwrap();
    warmup(&mut cluster, Config::WamrCrun).unwrap();
    let before = cluster.free().used;
    let procs_before = cluster.kernel().live_procs();
    let d = cluster
        .deploy("svc", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 10)
        .unwrap();
    assert!(cluster.free().used > before);
    cluster.teardown(d).unwrap();
    // Anonymous memory fully released; page cache may stay warm.
    let after = cluster.free().used;
    assert!(
        after.saturating_sub(before) < 6 << 20,
        "resident leak: before {before}, after {after} (kubelet/daemon growth only)"
    );
    assert_eq!(cluster.kernel().live_procs(), procs_before);
}

#[test]
fn cluster_stats_expose_the_sync_counter() {
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::WamrCrun], &w).unwrap();
    let boot = cluster.stats();
    assert_eq!(boot.pods_synced, 0);
    assert_eq!(boot.pods_managed, 0);
    let d = cluster
        .deploy("svc", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 3)
        .unwrap();
    let stats = cluster.stats();
    assert_eq!(stats.pods_synced, 3);
    assert_eq!(stats.pods_managed, 3);
    assert!(stats.live_procs > boot.live_procs);
    cluster.teardown(d).unwrap();
    let after = cluster.stats();
    assert_eq!(after.pods_synced, 3, "sync counter is monotonic across teardown");
    assert_eq!(after.pods_managed, 0);
    assert_eq!(after.live_procs, boot.live_procs);
}

#[test]
fn every_wasm_config_returns_the_kernel_to_baseline() {
    // All seven Wasm configurations route through the shared ProcessImage
    // and lifecycle machinery; deploy → teardown of each must return the
    // kernel to its baseline process and (anonymous) page population.
    const WASM_CONFIGS: [Config; 7] = [
        Config::WamrCrun,
        Config::CrunWasmtime,
        Config::CrunWasmer,
        Config::CrunWasmEdge,
        Config::ShimWasmtime,
        Config::ShimWasmer,
        Config::ShimWasmEdge,
    ];
    let w = Workload::light();
    let mut cluster = new_cluster(&WASM_CONFIGS, &w).unwrap();
    for &c in &WASM_CONFIGS {
        warmup(&mut cluster, c).unwrap();
    }
    let procs_before = cluster.kernel().live_procs();
    let used_before = cluster.free().used;
    for &c in &WASM_CONFIGS {
        let d = cluster.deploy(c.class_name(), c.image_ref(), c.class_name(), 2).unwrap();
        assert_eq!(d.running(), 2, "{}", c.label());
        cluster.teardown(d).unwrap();
        assert_eq!(cluster.kernel().live_procs(), procs_before, "{}: leaked processes", c.label());
    }
    // Anonymous memory returns to baseline modulo the kubelet/daemon
    // per-pod bookkeeping growth; the page cache may stay warm.
    let leaked = cluster.free().used.saturating_sub(used_before);
    assert!(leaked < 8 << 20, "anon leak across all configs: {leaked} bytes");
    assert_eq!(cluster.stats().pods_managed, 0);
}

#[test]
fn multiple_runtime_classes_coexist_on_one_cluster() {
    let w = Workload::light();
    let mut cluster =
        new_cluster(&[Config::WamrCrun, Config::ShimWasmtime, Config::CrunPython], &w).unwrap();
    let wamr = cluster
        .deploy("a", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 3)
        .unwrap();
    let shim = cluster
        .deploy("b", Config::ShimWasmtime.image_ref(), Config::ShimWasmtime.class_name(), 3)
        .unwrap();
    let py = cluster
        .deploy("c", Config::CrunPython.image_ref(), Config::CrunPython.class_name(), 3)
        .unwrap();
    let a = cluster.average_working_set(&wamr).unwrap();
    let b = cluster.average_working_set(&shim).unwrap();
    let c = cluster.average_working_set(&py).unwrap();
    assert!(a < b && a < c, "ours lightest: {a} vs shim {b} vs python {c}");
    for d in [wamr, shim, py] {
        cluster.teardown(d).unwrap();
    }
}

#[test]
fn oom_killed_container_via_memory_limit() {
    // Deploy through the low-level runtime with a tiny memory limit; the
    // kernel must OOM-kill the container when the workload commits memory.
    let cluster = Cluster::bootstrap().unwrap();
    let kernel = cluster.kernel().clone();
    memwasm::engines::install_engines(&kernel).unwrap();
    let mut store = memwasm::oci_spec_lite::ImageStore::new();
    let image = store
        .register(&kernel, wasm_microservice_image("tiny:v1", &MicroserviceConfig::default()))
        .unwrap()
        .clone();
    let mut spec = memwasm::oci_spec_lite::RuntimeSpec::for_command("oom", image.command());
    for (k, v) in &image.config.annotations {
        spec.annotations.insert(k.clone(), v.clone());
    }
    spec.linux.memory.limit = Some(1 << 20); // 1 MiB: far below the module's 2.5 MiB memory
    let bundle = memwasm::oci_spec_lite::Bundle::create(&kernel, "oom", &image, &spec).unwrap();

    let mut rt = LowLevelRuntime::new(kernel.clone(), &CRUN);
    rt.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    rt.register_handler(Box::new(PauseHandler));
    let ctx = memwasm::container_runtimes::RuntimeCtx {
        runtime_cgroup: kernel
            .cgroup_create(memwasm::simkernel::Kernel::ROOT_CGROUP, "sys")
            .unwrap(),
    };
    let pod = kernel.cgroup_create(memwasm::simkernel::Kernel::ROOT_CGROUP, "pod-oom").unwrap();
    let mut c = rt.create(&ctx, "oom", &bundle, pod).unwrap();
    let container_pid = c.pid;
    let err = rt.start(&ctx, &mut c, &bundle).unwrap_err();
    assert!(
        matches!(err, memwasm::simkernel::KernelError::OutOfMemory { .. }),
        "expected OOM, got {err}"
    );
    assert_eq!(kernel.proc_state(container_pid).unwrap(), ProcState::OomKilled);
    assert!(kernel.cgroup_oom_events(c.cgroup).unwrap() >= 1);
}

#[test]
fn invalid_module_fails_cleanly() {
    let cluster = Cluster::bootstrap().unwrap();
    let kernel = cluster.kernel().clone();
    memwasm::engines::install_engines(&kernel).unwrap();
    let mut store = memwasm::oci_spec_lite::ImageStore::new();
    let image = store
        .register(
            &kernel,
            memwasm::oci_spec_lite::ImageBuilder::new("bad:v1")
                .entrypoint(["/app/bad.wasm".to_string()])
                .annotation(memwasm::oci_spec_lite::WASM_VARIANT_ANNOTATION, "compat")
                .file("/app/bad.wasm", &b"this is not wasm"[..]),
        )
        .unwrap()
        .clone();
    let spec = memwasm::oci_spec_lite::RuntimeSpec::for_command("bad", image.command());
    let bundle = memwasm::oci_spec_lite::Bundle::create(&kernel, "bad", &image, &spec).unwrap();
    let mut rt = LowLevelRuntime::new(kernel.clone(), &CRUN);
    rt.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    let ctx = memwasm::container_runtimes::RuntimeCtx {
        runtime_cgroup: kernel
            .cgroup_create(memwasm::simkernel::Kernel::ROOT_CGROUP, "sys")
            .unwrap(),
    };
    let pod = kernel.cgroup_create(memwasm::simkernel::Kernel::ROOT_CGROUP, "pod-bad").unwrap();
    let mut c = rt.create(&ctx, "bad", &bundle, pod).unwrap();
    assert!(rt.start(&ctx, &mut c, &bundle).is_err());
}

#[test]
fn python_handler_in_hybrid_runtime_prefers_first_match() {
    // A runtime with both WAMR and Python handlers routes by spec.
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::CrunPython], &w).unwrap();
    let mut crun = LowLevelRuntime::new(cluster.kernel().clone(), &CRUN);
    crun.register_handler(Box::new(WamrHandler::new(WamrCrunConfig::default())));
    crun.register_handler(Box::new(PythonHandler::default()));
    crun.register_handler(Box::new(PauseHandler));
    cluster.register_class("hybrid", RuntimeClass::Oci { runtime: crun });
    let d = cluster.deploy("py", Config::CrunPython.image_ref(), "hybrid", 2).unwrap();
    assert_eq!(d.pods[0].stdout, b"microservice ready\n");
    cluster.teardown(d).unwrap();
}

#[test]
fn density_does_not_change_per_container_memory() {
    // §IV-B: "memory overhead per container does not vary significantly
    // between different deployment sizes".
    let w = Workload::light();
    let small = measure_memory(Config::WamrCrun, 5, &w).unwrap();
    let large = measure_memory(Config::WamrCrun, 40, &w).unwrap();
    let ratio = small.metrics_avg as f64 / large.metrics_avg as f64;
    assert!((0.85..1.2).contains(&ratio), "metrics ratio {ratio}");
}

#[test]
fn failed_pod_sync_rolls_back_cleanly() {
    // A broken image (invalid Wasm) must not leak sandboxes, processes, or
    // cgroups when the kubelet's sync fails mid-pipeline.
    let w = Workload::light();
    let mut cluster = new_cluster(&[Config::WamrCrun], &w).unwrap();
    cluster
        .pull_image(
            memwasm::oci_spec_lite::ImageBuilder::new("broken:v1")
                .entrypoint(["/app/bad.wasm".to_string()])
                .annotation(memwasm::oci_spec_lite::WASM_VARIANT_ANNOTATION, "compat")
                .file("/app/bad.wasm", &b"garbage"[..]),
        )
        .unwrap();
    let procs_before = cluster.kernel().live_procs();
    let used_before = cluster.free().used;

    let err = cluster.deploy("bad", "broken:v1", Config::WamrCrun.class_name(), 1);
    assert!(err.is_err(), "broken module must fail the deployment");

    assert_eq!(cluster.kernel().live_procs(), procs_before, "no leaked processes");
    assert_eq!(cluster.kubelet().pod_count(), 0, "no leaked pod records");
    let leaked = cluster.free().used.saturating_sub(used_before);
    assert!(leaked < 1 << 20, "no leaked anon memory: {leaked} bytes");
    // The node still works afterwards.
    let d = cluster
        .deploy("ok", Config::WamrCrun.image_ref(), Config::WamrCrun.class_name(), 2)
        .unwrap();
    assert_eq!(d.running(), 2);
    cluster.teardown(d).unwrap();
}
