//! Ungraceful node death, end to end: lease-driven crash detection and
//! rescheduling, partition fencing without double-counting, a drain
//! racing a rolling update, and the fault-schedule explorer's determinism
//! and shrinking contracts.

use std::sync::Mutex;

use memwasm::harness::explorer::{
    explore, generate_schedule, run_schedule, shrink, ExplorePlan, FaultEvent, InvariantKnobs,
};
use memwasm::harness::{Config, Workload};
use memwasm::k8s_sim::{
    Cluster, DeploymentController, DeploymentSpec, NodeCondition, Policy, RolloutStep,
};
use memwasm::simkernel::{Duration, KernelConfig, KernelResult};

/// Serializes every test that mutates the process-wide `HARNESS_THREADS`
/// environment variable — tests in one binary share the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn wamr_cluster(nodes: usize, workload: &Workload) -> KernelResult<Cluster> {
    let mut cluster = Cluster::bootstrap_nodes(
        nodes,
        KernelConfig::default(),
        memwasm::k8s_sim::NodeConfig::paper_extension(),
        Policy::Spread,
    )?;
    Config::WamrCrun.install(&mut cluster, workload)?;
    Ok(cluster)
}

/// Advance in lease-renewal steps, reconciling controller + kubelets each
/// step, until `total` simulated time has passed.
fn drive_for(cluster: &mut Cluster, ctrl: &mut DeploymentController, total: Duration) {
    let step = cluster.leases.renew_interval;
    let deadline = cluster.now() + total;
    while cluster.now() < deadline {
        cluster.advance(step);
        cluster.reconcile_controller(ctrl).unwrap();
        cluster.reconcile();
    }
}

#[test]
fn crash_one_of_three_nodes_reschedules_on_survivors() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(3, &w).unwrap();
    let spec = DeploymentSpec::new("svc", Config::WamrCrun.image_ref(), "crun-wamr", 6);
    let mut ctrl = DeploymentController::new(spec);
    assert!(cluster.settle_controller(&mut ctrl, 100).unwrap());
    let victim = 1;
    assert!(ctrl.replicas.iter().any(|r| r.node == victim));

    cluster.crash_node(victim).unwrap();
    // The lease hasn't expired yet: condition still Ready, replicas still
    // counted — detection latency is real.
    assert_eq!(cluster.node(victim).condition, NodeCondition::Ready);

    // Wait out lease grace + eviction grace; the controller evicts the
    // lost replicas and re-homes them on the two survivors.
    let horizon = cluster.leases.grace + cluster.leases.pod_eviction_grace;
    drive_for(&mut cluster, &mut ctrl, horizon + Duration::from_secs(20));
    assert_eq!(cluster.node(victim).condition, NodeCondition::NotReady);
    assert!(cluster.settle_controller(&mut ctrl, 100).unwrap());
    assert_eq!(cluster.ready_replicas(&ctrl), 6);
    assert!(ctrl.replicas.iter().all(|r| r.node != victim), "{:?}", ctrl.replicas);
    assert_eq!(cluster.stats().ready, 6, "dead node's pods must not be counted");
}

#[test]
fn partition_heal_reconverges_without_double_counting() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(3, &w).unwrap();
    let spec = DeploymentSpec::new("svc", Config::WamrCrun.image_ref(), "crun-wamr", 6);
    let mut ctrl = DeploymentController::new(spec);
    assert!(cluster.settle_controller(&mut ctrl, 100).unwrap());
    let victim = 2;
    let stale = cluster.node(victim).kubelet.pod_count();
    assert!(stale > 0);

    cluster.partition_node(victim).unwrap();
    let horizon = cluster.leases.grace + cluster.leases.pod_eviction_grace;
    drive_for(&mut cluster, &mut ctrl, horizon + Duration::from_secs(20));
    assert!(cluster.settle_controller(&mut ctrl, 100).unwrap());
    // Re-homed on the survivors — but the partitioned node's pods still
    // run: the cluster briefly double-counts (split-brain).
    assert_eq!(cluster.ready_replicas(&ctrl), 6);
    assert!(ctrl.replicas.iter().all(|r| r.node != victim));
    assert_eq!(cluster.node(victim).kubelet.pod_count(), stale);
    assert_eq!(cluster.stats().running, 6 + stale);

    // Heal: the first renewal fences the stale replicas before the node
    // turns Ready, so counts reconverge to exactly `replicas`.
    cluster.heal_node(victim).unwrap();
    let renew = cluster.leases.renew_interval;
    drive_for(&mut cluster, &mut ctrl, renew);
    assert!(cluster.node(victim).ready());
    assert_eq!(cluster.node(victim).kubelet.pod_count(), 0);
    assert_eq!(cluster.ready_replicas(&ctrl), 6);
    assert_eq!(cluster.stats().running, 6);
}

#[test]
fn drain_racing_rolling_update_converges_within_budget() {
    let w = Workload::light();
    let mut cluster = wamr_cluster(3, &w).unwrap();
    // A second image for the update (same workload, new tag).
    let image_v2 = "registry.local/microservice-wasm:v2";
    for node in 0..cluster.node_count() {
        cluster
            .pull_image_on(node, memwasm::workloads::wasm_microservice_image(image_v2, &w.wasm))
            .unwrap();
    }
    let spec = DeploymentSpec::new("svc", Config::WamrCrun.image_ref(), "crun-wamr", 6);
    let replicas = spec.replicas;
    let max_unavailable = spec.max_unavailable;
    let mut ctrl = DeploymentController::new(spec);
    assert!(cluster.settle_controller(&mut ctrl, 100).unwrap());

    // Begin the rollout, take one surge step, then drain a node mid-surge.
    cluster.begin_rolling_update(&mut ctrl, image_v2);
    let first = cluster.rollout_step(&mut ctrl).unwrap();
    assert!(first.created > 0 && !first.done);
    let victim = 1;
    cluster.drain_node(victim).unwrap();

    // Drive the rollout to convergence. The drain itself dips readiness
    // (that loss is the drain's, not the rollout's) — but once readiness
    // recovers into the `maxUnavailable` budget, no rollout step may ever
    // retire it back out of the budget.
    let mut done = false;
    let mut recovered = false;
    for _ in 0..200 {
        let step: RolloutStep = cluster.rollout_step(&mut ctrl).unwrap();
        let ready = cluster.ready_replicas(&ctrl);
        if recovered {
            assert!(
                ready + max_unavailable >= replicas,
                "rollout step broke the maxUnavailable budget: {ready} of {replicas} ready"
            );
        }
        recovered |= ready + max_unavailable >= replicas;
        if step.done {
            done = true;
            break;
        }
        let now = cluster.now();
        match cluster.next_deadline() {
            Some(d) if d > now => cluster.advance(d - now),
            _ => cluster.advance(Duration::from_secs(1)),
        }
        cluster.reconcile();
    }
    assert!(done, "rollout did not converge after the drain");
    assert!(ctrl.replicas.iter().all(|r| r.revision == 2));
    assert!(ctrl.replicas.iter().all(|r| r.node != victim), "{:?}", ctrl.replicas);
    assert_eq!(cluster.ready_replicas(&ctrl), replicas);
    assert_eq!(cluster.node(victim).kubelet.pod_count(), 0);
    for r in &ctrl.replicas {
        let e = cluster.node(r.node).kubelet.managed_pod(&r.pod).unwrap();
        assert_eq!(e.spec.image, image_v2);
    }
}

#[test]
fn explorer_is_byte_identical_across_worker_counts_and_runs() {
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();
    let plan = ExplorePlan { schedules: 8, ..ExplorePlan::smoke(0xBADD_5EED) };

    let mut runs = Vec::new();
    for threads in ["1", "2", "8", "1"] {
        std::env::set_var("HARNESS_THREADS", threads);
        let report = explore(&plan, &w, InvariantKnobs::default()).unwrap();
        runs.push((threads, report.render().into_bytes()));
    }
    std::env::remove_var("HARNESS_THREADS");
    let (_, first) = &runs[0];
    for (threads, bytes) in &runs[1..] {
        assert_eq!(bytes, first, "explorer output differs at HARNESS_THREADS={threads}");
    }
}

#[test]
fn broken_invariant_is_caught_shrunk_and_reproducible() {
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var("HARNESS_THREADS", "2");
    let w = Workload::light();
    // The deliberately-broken invariant: forbid NotReady entirely. Any
    // schedule containing a crash or partition must now fail — and every
    // generated schedule starts with one, so the explorer must catch it.
    let knobs = InvariantKnobs { forbid_not_ready: true };
    let plan = ExplorePlan { schedules: 4, ..ExplorePlan::smoke(0xFA11_FA11) };
    let report = explore(&plan, &w, knobs).unwrap();
    std::env::remove_var("HARNESS_THREADS");
    assert_eq!(report.counterexamples.len(), plan.schedules, "every schedule must violate");

    for c in &report.counterexamples {
        // The minimal failing prefix is the first fault event alone.
        assert_eq!(c.shrunk.events.len(), 1, "{:?}", c.shrunk.events);
        assert!(matches!(c.shrunk.events[0], FaultEvent::Crash(_) | FaultEvent::Partition(_)));
        assert!(!c.shrunk.violations.is_empty());

        // Reproducible from the printed seed alone: regenerate the
        // schedule from the seed, re-run the shrunk prefix, same verdict.
        let regenerated = generate_schedule(c.full.seed, plan.nodes, plan.max_events);
        assert_eq!(regenerated, c.full.events);
        let replay = run_schedule(&plan, c.full.seed, &c.shrunk.events, &w, knobs).unwrap();
        assert_eq!(replay, c.shrunk);
        let reshrunk = shrink(&plan, c.full.seed, &regenerated, &w, knobs).unwrap().unwrap();
        assert_eq!(reshrunk, c.shrunk);
    }
}
