//! The paper's quantitative claims as a test suite (fast densities).
//!
//! These run the same checks as `cargo run -p harness --bin verify_claims`
//! but at reduced densities so they fit a test run; the full-density run
//! (10/100/400 pods) is recorded in EXPERIMENTS.md.

use memwasm::harness::claims::{check_memory_claims, check_startup_claims, render_claims};
use memwasm::harness::Workload;
#[test]
fn memory_claims_hold_at_reduced_density() {
    let claims = check_memory_claims(&Workload::light(), &[8, 32]).unwrap();
    let (text, passed) = render_claims(&claims);
    assert!(passed, "memory claims failed:\n{text}");
    assert_eq!(claims.len(), 9);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "startup claims need the calibrated workload; run with --release \
              (or `cargo run --release -p harness --bin verify_claims`)"
)]
fn startup_shape_claims_hold() {
    // 10 pods is the paper's small density; 400 is the contended one —
    // 160 is enough to surface the crossovers while staying test-sized.
    let claims = check_startup_claims(&Workload::default(), 10, 160).unwrap();
    let (text, _passed) = render_claims(&claims);
    // At reduced large-density the two contended-crossover claims may sit
    // at the band edge; require the small-density shape strictly and the
    // crossover direction.
    for c in &claims {
        match c.name {
            "fig8_shims_beat_ours_at_10"
            | "fig8_ours_beats_other_crun_at_10"
            | "fig8_ours_beats_python_at_10"
            | "fig9_ours_beats_python_at_400" => {
                assert!(c.passed, "{}: {}\n{text}", c.name, c.detail)
            }
            _ => {} // full-density crossover magnitudes checked by verify_claims
        }
    }
}
