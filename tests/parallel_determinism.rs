//! The parallel driver's central guarantee: fanning an experiment grid
//! across worker threads changes wall-clock only — the sample sequence and
//! every rendered CSV byte are identical to the serial path.

use std::sync::Mutex;

use memwasm::harness::{
    figures, run_cells_on, run_cells_tracked, Cell, CellSample, Config, Observe, Workload,
};

/// Serializes every test that mutates the process-wide `HARNESS_THREADS`
/// environment variable — tests in one binary share the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn grid() -> Vec<Cell> {
    let configs = [Config::WamrCrun, Config::CrunWasmtime, Config::CrunPython];
    let densities = [2usize, 5];
    configs
        .iter()
        .flat_map(|&c| {
            densities.iter().map(move |&d| Cell { config: c, density: d, observe: Observe::Both })
        })
        .collect()
}

fn assert_samples_identical(serial: &[CellSample], parallel: &[CellSample]) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.config, p.config);
        assert_eq!(s.density, p.density);
        let (sm, pm) = (s.memory.unwrap(), p.memory.unwrap());
        assert_eq!(sm.metrics_avg, pm.metrics_avg, "{:?}@{}", s.config, s.density);
        assert_eq!(sm.free_per_pod, pm.free_per_pod, "{:?}@{}", s.config, s.density);
        let (ss, ps) = (s.startup.unwrap(), p.startup.unwrap());
        assert_eq!(ss.total, ps.total, "{:?}@{}", s.config, s.density);
    }
}

#[test]
fn parallel_samples_match_serial_in_grid_order() {
    let w = Workload::light();
    let cells = grid();
    let serial = run_cells_on(&cells, &w, 1).unwrap();
    for threads in [2, 4, 8] {
        let parallel = run_cells_on(&cells, &w, threads).unwrap();
        assert_samples_identical(&serial, &parallel);
    }
}

#[test]
fn figure_csv_bytes_are_identical_across_drivers() {
    // HARNESS_THREADS steers the driver the figure functions use; both
    // comparisons live under ENV_LOCK so the env var is never mutated
    // concurrently.
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();
    let densities = [2usize, 4];

    std::env::set_var("HARNESS_THREADS", "1");
    let serial_fig5 = figures::fig5(&w, &densities).unwrap();
    let (serial_fig3, serial_fig4) = figures::figs3_4(&w, &densities).unwrap();

    std::env::set_var("HARNESS_THREADS", "4");
    let parallel_fig5 = figures::fig5(&w, &densities).unwrap();
    let (parallel_fig3, parallel_fig4) = figures::figs3_4(&w, &densities).unwrap();
    std::env::remove_var("HARNESS_THREADS");

    assert_eq!(serial_fig5.to_csv().into_bytes(), parallel_fig5.to_csv().into_bytes());
    assert_eq!(serial_fig3.to_csv().into_bytes(), parallel_fig3.to_csv().into_bytes());
    assert_eq!(serial_fig4.to_csv().into_bytes(), parallel_fig4.to_csv().into_bytes());
    assert_eq!(serial_fig5.render(), parallel_fig5.render());
}

#[test]
fn paired_figures_match_their_standalone_forms() {
    // figs3_4 shares one grid run; the standalone fig3/fig4 run their own
    // grids. Same cells, same samples, same bytes.
    let w = Workload::light();
    let densities = [3usize];
    let (f3, f4) = figures::figs3_4(&w, &densities).unwrap();
    assert_eq!(f3.to_csv(), figures::fig3(&w, &densities).unwrap().to_csv());
    assert_eq!(f4.to_csv(), figures::fig4(&w, &densities).unwrap().to_csv());
}

#[test]
fn pinned_thread_counts_are_byte_identical_and_parallel_is_not_slower() {
    // Pin HARNESS_THREADS to 1, 2, and 8 and assert the merged grid is
    // byte-identical every time (CSV bytes are the paper's ground truth).
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::light();
    let densities = [2usize, 4];

    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HARNESS_THREADS", threads);
        let fig5 = figures::fig5(&w, &densities).unwrap();
        runs.push((threads, fig5.to_csv().into_bytes(), fig5.render()));
    }
    std::env::remove_var("HARNESS_THREADS");
    let (_, csv1, render1) = &runs[0];
    for (threads, csv, render) in &runs[1..] {
        assert_eq!(csv, csv1, "fig5 CSV bytes differ at HARNESS_THREADS={threads}");
        assert_eq!(render, render1, "fig5 render differs at HARNESS_THREADS={threads}");
    }

    // Speedup sanity: with real cores available, the parallel driver must
    // not be slower than serial (modulo 5% noise). On narrower hosts the
    // comparison measures time-sharing, not the driver — skip it.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup sanity: {cores} core(s) < 4");
        return;
    }
    let cells = Cell::memory_grid(&[Config::WamrCrun, Config::CrunWasmtime], &[4, 8, 12, 16]);
    let t = std::time::Instant::now();
    run_cells_on(&cells, &w, 1).unwrap();
    let serial_s = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let run = run_cells_tracked(&cells, &w, 4).unwrap();
    let parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(run.workers, 4, "4 requested workers on a >=4-core host must all resolve");
    assert!(
        parallel_s <= serial_s * 1.05,
        "parallel driver slower than serial: {parallel_s:.2}s vs {serial_s:.2}s"
    );
}
