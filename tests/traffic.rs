//! The traffic plane's contracts: the overload-and-recover scenario holds
//! on the contribution config (with its retry-budget control arm), the
//! sweep is byte-identical across `HARNESS_THREADS` worker counts and
//! repeated runs, and the scenario driver steps a rolling update and the
//! HPA from the live request loop without breaching maxUnavailable.

use std::sync::Mutex;

use memwasm::harness::traffic::{
    check_contract, check_scenario, pod_capacity_rps, request_exec, run_overload_contract,
    run_scenario, run_steady_cell, traffic_sweep, ContractPlan, SweepPlan,
};
use memwasm::harness::{Config, Workload};

/// Serializes every test that mutates the process-wide `HARNESS_THREADS`
/// environment variable — tests in one binary share the environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const SEED: u64 = 0xC4A0_5EED;

#[test]
fn overload_contract_holds_on_the_contribution_config() {
    let w = Workload::serving();
    let plan = ContractPlan::smoke(SEED);
    let outcome = run_overload_contract(Config::WamrCrun, &w, &plan).unwrap();
    check_contract(&outcome, &plan).unwrap();

    // The arms differ in the intended direction, not just by the check's
    // thresholds: budget off means amplified attempts and melted goodput.
    assert!(outcome.control_attempts > outcome.treatment_attempts);
    assert!(outcome.control_goodput_rps < outcome.overload_goodput_rps);
    // Overload actually shed (the scenario is not vacuous).
    assert!(outcome.overload_shed_rate > 0.2);
}

#[test]
fn traffic_sweep_is_byte_identical_across_worker_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let w = Workload::serving();
    let plan = SweepPlan::smoke(SEED);
    let configs = [Config::WamrCrun, Config::CrunWasmtime, Config::CrunWasmEdge];

    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HARNESS_THREADS", threads);
        let (table, summaries) = traffic_sweep(&configs, &w, &plan).unwrap();
        let stats: Vec<_> = summaries
            .iter()
            .map(|s| (s.config, s.p50, s.p99, s.p999, s.run.measured().completed, s.run.admitted))
            .collect();
        runs.push((threads, table.to_csv().into_bytes(), stats));
    }
    std::env::remove_var("HARNESS_THREADS");
    let (_, csv1, stats1) = &runs[0];
    for (threads, csv, stats) in &runs[1..] {
        assert_eq!(csv, csv1, "sweep CSV bytes differ at HARNESS_THREADS={threads}");
        assert_eq!(stats, stats1, "summaries differ at HARNESS_THREADS={threads}");
    }
}

#[test]
fn repeated_steady_cells_are_identical() {
    let w = Workload::serving();
    let plan = SweepPlan::smoke(SEED);
    let a = run_steady_cell(Config::WamrCrun, &w, &plan).unwrap();
    let b = run_steady_cell(Config::WamrCrun, &w, &plan).unwrap();
    assert_eq!((a.p50, a.p99, a.p999), (b.p50, b.p99, b.p999));
    assert_eq!(a.run.measured().completed, b.run.measured().completed);
    assert_eq!(a.run.sheds_by_reason, b.run.sheds_by_reason);
    assert_eq!(a.run.attempts, b.run.attempts);
    assert_eq!(a.run.endpoint_working_set, b.run.endpoint_working_set);
}

#[test]
fn scenario_driver_rolls_and_scales_under_live_traffic() {
    let w = Workload::serving();
    let run = run_scenario(Config::WamrCrun, &w, SEED).unwrap();
    check_scenario(&run).unwrap();
    let obs = run.scenario.unwrap();
    // The rollout held the maxUnavailable floor with requests in flight,
    // and the queue-depth HPA trigger added replicas during the surge.
    assert!(obs.min_ready_during_rollout >= obs.ready_floor);
    assert!(obs.inflight_during_rollout);
    assert!(obs.final_replicas > 3);
}

#[test]
fn per_config_service_times_follow_the_engine_profiles() {
    // crun and shim variants of one engine share request latency; the
    // memory axis (working set per RPS) is where they differ.
    assert_eq!(request_exec(Config::CrunWasmtime), request_exec(Config::ShimWasmtime));
    assert!(pod_capacity_rps(Config::CrunWasmtime) > pod_capacity_rps(Config::WamrCrun));
    // Capacity is the reciprocal of service time.
    let exec = request_exec(Config::WamrCrun).as_secs_f64();
    let rps = pod_capacity_rps(Config::WamrCrun);
    assert!((rps * exec - 1.0).abs() < 1e-9);
}
