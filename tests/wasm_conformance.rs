//! Wasm-core conformance: spec-behaviour checks run on BOTH execution
//! tiers, so the in-place interpreter and the lowered executor must agree
//! with the spec and with each other.

use std::sync::Arc;

use memwasm::wasm_core::types::BlockType;
use memwasm::wasm_core::{
    ExecTier, FuncType, Imports, Instance, InstanceConfig, Instruction as I, ModuleBuilder, Trap,
    ValType, Value,
};

fn run_both(
    build: impl Fn() -> ModuleBuilder,
    func: &str,
    args: &[Value],
) -> [Result<Vec<Value>, Trap>; 2] {
    [ExecTier::InPlace, ExecTier::Lowered].map(|tier| {
        let module = Arc::new(build().build());
        let mut inst = Instance::instantiate(
            module,
            Imports::new(),
            InstanceConfig { tier, fuel: Some(10_000_000), ..Default::default() },
        )
        .expect("instantiate");
        inst.invoke(func, args)
    })
}

fn expect_both(build: impl Fn() -> ModuleBuilder, func: &str, args: &[Value], want: Value) {
    let [a, b] = run_both(build, func, args);
    assert_eq!(a.as_deref(), Ok(&[want][..]), "in-place");
    assert_eq!(b.as_deref(), Ok(&[want][..]), "lowered");
}

fn expect_trap(build: impl Fn() -> ModuleBuilder, func: &str, args: &[Value], want: Trap) {
    let [a, b] = run_both(build, func, args);
    assert_eq!(a, Err(want.clone()), "in-place");
    assert_eq!(b, Err(want), "lowered");
}

#[test]
fn wrapping_integer_arithmetic() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).local_get(1).op(I::I32Mul);
        });
        b.export_func("mul", f);
        b
    };
    expect_both(build, "mul", &[Value::I32(i32::MAX), Value::I32(2)], Value::I32(-2));
}

#[test]
fn division_traps_on_both_tiers() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).local_get(1).op(I::I32DivS);
        });
        b.export_func("div", f);
        b
    };
    expect_trap(build, "div", &[Value::I32(1), Value::I32(0)], Trap::IntegerDivideByZero);
    expect_trap(build, "div", &[Value::I32(i32::MIN), Value::I32(-1)], Trap::IntegerOverflow);
    expect_both(build, "div", &[Value::I32(-7), Value::I32(2)], Value::I32(-3));
}

#[test]
fn float_to_int_conversions() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::F64], vec![ValType::I32]), |f| {
            f.local_get(0).op(I::I32TruncF64S);
        });
        b.export_func("trunc", f);
        b
    };
    expect_both(build, "trunc", &[Value::F64(-3.99)], Value::I32(-3));
    expect_trap(build, "trunc", &[Value::F64(f64::NAN)], Trap::InvalidConversionToInteger);
    expect_trap(build, "trunc", &[Value::F64(3e10)], Trap::IntegerOverflow);
}

#[test]
fn memory_grow_and_bounds() {
    let build = || {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(2));
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            // grow(1) returns old size 1; grow(5) fails with -1; sum = 0.
            f.i32_const(1).op(I::MemoryGrow);
            f.i32_const(5).op(I::MemoryGrow);
            f.op(I::I32Add);
        });
        b.export_func("grow", f);
        let oob = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).i32_load(0);
        });
        b.export_func("load", oob);
        b
    };
    expect_both(build, "grow", &[], Value::I32(0));
    expect_trap(build, "load", &[Value::I32(70 << 10)], Trap::MemoryOutOfBounds);
    expect_both(build, "load", &[Value::I32(0)], Value::I32(0));
}

#[test]
fn globals_and_start_function() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let g = b.global(ValType::I64, true, memwasm::wasm_core::module::ConstExpr::I64(5));
        let init = b.func(FuncType::new(vec![], vec![]), |f| {
            f.global_get(g).op(I::I64Const(37)).op(I::I64Add).global_set(g);
        });
        b.start(init);
        let read = b.func(FuncType::new(vec![], vec![ValType::I64]), |f| {
            f.global_get(g);
        });
        b.export_func("read", read);
        b
    };
    expect_both(build, "read", &[], Value::I64(42));
}

#[test]
fn block_results_flow_through_branches() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                // Either branch carries an i32 out of the block.
                f.i32_const(111);
                f.local_get(0).br_if(0);
                f.drop_();
                f.i32_const(222);
            });
        });
        b.export_func("pick", f);
        b
    };
    expect_both(build, "pick", &[Value::I32(1)], Value::I32(111));
    expect_both(build, "pick", &[Value::I32(0)], Value::I32(222));
}

#[test]
fn loop_branch_carries_params_to_loop_head() {
    // A loop with a block-type from the type section (params via Func).
    let build = || {
        let mut b = ModuleBuilder::new();
        // Countdown using a loop whose label is branched to with br_if.
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let sum = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(I::I32Eqz).br_if(1);
                    f.local_get(sum).local_get(0).op(I::I32Add).local_set(sum);
                    f.local_get(0).i32_const(1).op(I::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(sum);
        });
        b.export_func("sum", f);
        b
    };
    expect_both(build, "sum", &[Value::I32(1000)], Value::I32(500500));
}

#[test]
fn nan_propagation_bitpatterns_agree() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::F64, ValType::F64], vec![ValType::I64]), |f| {
            f.local_get(0).local_get(1).op(I::F64Min).op(I::I64ReinterpretF64);
        });
        b.export_func("minbits", f);
        b
    };
    let [a, b] = run_both(build, "minbits", &[Value::F64(f64::NAN), Value::F64(1.0)]);
    assert_eq!(a, b, "tiers agree on NaN bit patterns");
}

#[test]
fn select_and_shift_semantics() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            // select(a << 33, a >> 1, cond=b)
            f.local_get(0).i32_const(33).op(I::I32Shl);
            f.local_get(0).i32_const(1).op(I::I32ShrU);
            f.local_get(1);
            f.op(I::Select);
        });
        b.export_func("f", f);
        b
    };
    // Shift count masked: 1 << 33 == 2.
    expect_both(build, "f", &[Value::I32(1), Value::I32(1)], Value::I32(2));
    expect_both(build, "f", &[Value::I32(8), Value::I32(0)], Value::I32(4));
}

#[test]
fn call_indirect_type_mismatch_traps() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let sig_i32 = FuncType::new(vec![], vec![ValType::I32]);
        let sig_i64 = FuncType::new(vec![], vec![ValType::I64]);
        let f_i64 = b.func(sig_i64, |f| {
            f.op(I::I64Const(1));
        });
        b.table(1, Some(1));
        b.elem(0, vec![f_i64]);
        let sig_i32_idx_holder = sig_i32.clone();
        let caller = b.func(sig_i32, move |f| {
            let _ = &sig_i32_idx_holder;
            // type index 0 is () -> i64... depends on interning order; use
            // call_indirect with the *other* signature's type idx.
            f.i32_const(0).call_indirect(1);
        });
        b.export_func("call", caller);
        b
    };
    // Type index 1 is () -> (i32) (interned second); the table holds an
    // () -> (i64) function: mismatch.
    expect_trap(build, "call", &[], Trap::IndirectCallTypeMismatch);
}

#[test]
fn fuel_limits_agree() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.loop_(BlockType::Empty, |f| {
                f.br(0);
            });
        });
        b.export_func("spin", f);
        b
    };
    for tier in [ExecTier::InPlace, ExecTier::Lowered] {
        let module = Arc::new(build().build());
        let mut inst = Instance::instantiate(
            module,
            Imports::new(),
            InstanceConfig { tier, fuel: Some(1_000), ..Default::default() },
        )
        .unwrap();
        assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel), "{tier:?}");
    }
}

// ---------------------------------------------------------------------------
// Fused-tier stress: each superinstruction pattern the lowering tier fuses
// must produce spec behaviour identical to the in-place interpreter, and
// the pattern must actually hit the fusion path (`stats.fused_ops > 0`),
// so a regression that silently stops fusing fails loudly here.
// ---------------------------------------------------------------------------

/// Instantiate on the lowered tier and assert the module fused at least
/// one pattern (fusion is counted at compile time, per instance).
fn assert_fused(build: impl Fn() -> ModuleBuilder) {
    let module = Arc::new(build().build());
    let inst = Instance::instantiate(
        module,
        Imports::new(),
        InstanceConfig { tier: ExecTier::Lowered, fuel: Some(10_000_000), ..Default::default() },
    )
    .expect("instantiate");
    assert!(inst.stats().fused_ops > 0, "pattern must exercise superinstruction fusion");
}

#[test]
fn fused_local_operand_binops_agree() {
    // local.get + local.get + binop: operands fold straight into the op.
    for (op, a, b, want) in [
        (I::I32Add, 7, -3, 4),
        (I::I32Sub, 7, -3, 10),
        (I::I32Mul, -7, 3, -21),
        (I::I32And, 0b1100, 0b1010, 0b1000),
        (I::I32Or, 0b1100, 0b1010, 0b1110),
        (I::I32Xor, 0b1100, 0b1010, 0b0110),
        (I::I32Shl, 1, 33, 2),
        (I::I32ShrS, -8, 1, -4),
        (I::I32ShrU, -8, 31, 1),
    ] {
        let build = move || {
            let mut b = ModuleBuilder::new();
            let op = op.clone();
            let f =
                b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
                    f.local_get(0).local_get(1).op(op);
                });
            b.export_func("f", f);
            b
        };
        expect_both(&build, "f", &[Value::I32(a), Value::I32(b)], Value::I32(want));
        assert_fused(&build);
    }
}

#[test]
fn fused_const_imm_binops_agree() {
    // local.get + const + binop (+ local.set): the immediate folds into
    // the instruction word and the store retargets the destination slot.
    for (op, imm, a, want) in [
        (I::I32Add, 5, 37, 42),
        (I::I32Sub, 5, 37, 32),
        (I::I32Mul, -3, 7, -21),
        (I::I32And, 0xf0, 0xff, 0xf0),
        (I::I32Or, 0x0f, 0xf0, 0xff),
        (I::I32Xor, -1, 0, -1),
        (I::I32Shl, 4, 3, 48),
        (I::I32ShrS, 2, -16, -4),
        (I::I32ShrU, 2, -16, 0x3ffffffc),
    ] {
        let build = move || {
            let mut b = ModuleBuilder::new();
            let op = op.clone();
            let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
                let tmp = f.local(ValType::I32);
                f.local_get(0).i32_const(imm).op(op).local_set(tmp);
                f.local_get(tmp);
            });
            b.export_func("f", f);
            b
        };
        expect_both(&build, "f", &[Value::I32(a)], Value::I32(want));
        assert_fused(&build);
    }
}

#[test]
fn fused_const_address_loads_and_stores_agree() {
    // const + load / const + store: the address folds into the word, and
    // a folded out-of-bounds address must still trap identically.
    let build = || {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(1));
        let rt = b.func(FuncType::new(vec![ValType::I64], vec![ValType::I64]), |f| {
            f.i32_const(64).local_get(0).i64_store(8);
            f.i32_const(64).i64_load(8);
        });
        b.export_func("roundtrip", rt);
        let oob = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            f.i32_const(65 << 10).i32_load(0);
        });
        b.export_func("oob", oob);
        b
    };
    expect_both(build, "roundtrip", &[Value::I64(-123456789)], Value::I64(-123456789));
    expect_trap(build, "oob", &[], Trap::MemoryOutOfBounds);
    assert_fused(build);
}

#[test]
fn fused_compare_branches_agree_in_both_polarities() {
    // compare + br_if fuses to a branching compare; compare + if fuses the
    // *inverted* compare. Drive every direction through both shapes with
    // operand pairs on each side of the condition (including the signed /
    // unsigned boundary at i32::MIN).
    let cases: [(I, i32, i32, bool); 20] = [
        (I::I32Eq, 3, 3, true),
        (I::I32Eq, 3, 4, false),
        (I::I32Ne, 3, 4, true),
        (I::I32Ne, 3, 3, false),
        (I::I32LtS, i32::MIN, 0, true),
        (I::I32LtS, 0, i32::MIN, false),
        (I::I32LtU, 0, i32::MIN, true),
        (I::I32LtU, i32::MIN, 0, false),
        (I::I32GtS, 0, i32::MIN, true),
        (I::I32GtS, i32::MIN, 0, false),
        (I::I32GtU, i32::MIN, 0, true),
        (I::I32GtU, 0, i32::MIN, false),
        (I::I32LeS, 5, 5, true),
        (I::I32LeS, 6, 5, false),
        (I::I32LeU, -1, -1, true),
        (I::I32LeU, -1, 0, false),
        (I::I32GeS, 5, 5, true),
        (I::I32GeS, 4, 5, false),
        (I::I32GeU, -1, 0, true),
        (I::I32GeU, 0, -1, false),
    ];
    for (op, a, b, taken) in cases {
        let op_if = op.clone();
        let br_shape = move || {
            let mut mb = ModuleBuilder::new();
            let op = op.clone();
            let f =
                mb.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
                    f.block(BlockType::Empty, |f| {
                        f.local_get(0).local_get(1).op(op).br_if(0);
                        f.i32_const(0).return_();
                    });
                    f.i32_const(1);
                });
            mb.export_func("f", f);
            mb
        };
        let if_shape = move || {
            let mut mb = ModuleBuilder::new();
            let op = op_if.clone();
            let f =
                mb.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
                    f.local_get(0).local_get(1).op(op);
                    f.if_else(
                        BlockType::Value(ValType::I32),
                        |f| {
                            f.i32_const(1);
                        },
                        |f| {
                            f.i32_const(0);
                        },
                    );
                });
            mb.export_func("f", f);
            mb
        };
        let want = Value::I32(taken as i32);
        expect_both(&br_shape, "f", &[Value::I32(a), Value::I32(b)], want);
        expect_both(&if_shape, "f", &[Value::I32(a), Value::I32(b)], want);
        assert_fused(&br_shape);
        assert_fused(&if_shape);
    }
}

#[test]
fn fused_tee_and_select_chains_agree() {
    // local.tee keeps the value live across a fused chain; select with a
    // constant condition folds statically, a dynamic one stays an op.
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let t = f.local(ValType::I32);
            // t = x + 1; select(t * 2, t, x != 0) with a dynamic condition,
            // then add a statically-folded select(10, 20, 1).
            f.local_get(0).i32_const(1).op(I::I32Add).local_tee(t);
            f.i32_const(2).op(I::I32Mul);
            f.local_get(t);
            f.local_get(0);
            f.op(I::Select);
            f.i32_const(10).i32_const(20).i32_const(1).op(I::Select);
            f.op(I::I32Add);
        });
        b.export_func("f", f);
        b
    };
    expect_both(build, "f", &[Value::I32(3)], Value::I32(18)); // (3+1)*2 + 10
    expect_both(build, "f", &[Value::I32(0)], Value::I32(11)); // (0+1)   + 10
    assert_fused(build);
}

#[test]
fn epoch_interrupt_is_identical_under_fusion() {
    use memwasm::wasm_core::{EpochClock, EpochConfig};
    // A hot loop made entirely of fusable patterns (imm add, compare +
    // br_if): the fused tier must still hit the epoch safepoint on every
    // executed word and trap with `Trap::Interrupted` exactly at the
    // deadline tick — fusion may change *how many* instructions retire,
    // never *whether* the watchdog fires.
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            let i = f.local(ValType::I32);
            f.loop_(BlockType::Empty, |f| {
                f.local_get(i).i32_const(1).op(I::I32Add).local_set(i);
                f.local_get(i).i32_const(-1).op(I::I32Ne).br_if(0);
            });
            f.local_get(i);
        });
        b.export_func("spin", f);
        b
    };
    for tier in [ExecTier::InPlace, ExecTier::Lowered] {
        let run = || {
            let module = Arc::new(build().build());
            let mut inst = Instance::instantiate(
                module,
                Imports::new(),
                InstanceConfig {
                    tier,
                    epoch: Some(EpochConfig {
                        clock: EpochClock::new(),
                        deadline: 7,
                        tick_instrs: 64,
                    }),
                    ..Default::default()
                },
            )
            .unwrap();
            let res = inst.invoke("spin", &[]);
            (res, inst.stats().instrs_retired, inst.epoch_clock().unwrap().now())
        };
        let (res, retired, epoch) = run();
        assert_eq!(res, Err(Trap::Interrupted), "{tier:?}");
        assert_eq!(epoch, 7, "{tier:?}: trap lands exactly at the deadline tick");
        let (res2, retired2, _) = run();
        assert_eq!(res2, Err(Trap::Interrupted), "{tier:?}");
        assert_eq!(retired, retired2, "{tier:?}: same deadline, same trap point");
    }
    assert_fused(build);
}
