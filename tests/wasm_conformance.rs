//! Wasm-core conformance: spec-behaviour checks run on BOTH execution
//! tiers, so the in-place interpreter and the lowered executor must agree
//! with the spec and with each other.

use std::sync::Arc;

use memwasm::wasm_core::types::BlockType;
use memwasm::wasm_core::{
    ExecTier, FuncType, Imports, Instance, InstanceConfig, Instruction as I, ModuleBuilder, Trap,
    ValType, Value,
};

fn run_both(
    build: impl Fn() -> ModuleBuilder,
    func: &str,
    args: &[Value],
) -> [Result<Vec<Value>, Trap>; 2] {
    [ExecTier::InPlace, ExecTier::Lowered].map(|tier| {
        let module = Arc::new(build().build());
        let mut inst = Instance::instantiate(
            module,
            Imports::new(),
            InstanceConfig { tier, fuel: Some(10_000_000), ..Default::default() },
        )
        .expect("instantiate");
        inst.invoke(func, args)
    })
}

fn expect_both(build: impl Fn() -> ModuleBuilder, func: &str, args: &[Value], want: Value) {
    let [a, b] = run_both(build, func, args);
    assert_eq!(a.as_deref(), Ok(&[want][..]), "in-place");
    assert_eq!(b.as_deref(), Ok(&[want][..]), "lowered");
}

fn expect_trap(build: impl Fn() -> ModuleBuilder, func: &str, args: &[Value], want: Trap) {
    let [a, b] = run_both(build, func, args);
    assert_eq!(a, Err(want.clone()), "in-place");
    assert_eq!(b, Err(want), "lowered");
}

#[test]
fn wrapping_integer_arithmetic() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).local_get(1).op(I::I32Mul);
        });
        b.export_func("mul", f);
        b
    };
    expect_both(build, "mul", &[Value::I32(i32::MAX), Value::I32(2)], Value::I32(-2));
}

#[test]
fn division_traps_on_both_tiers() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).local_get(1).op(I::I32DivS);
        });
        b.export_func("div", f);
        b
    };
    expect_trap(build, "div", &[Value::I32(1), Value::I32(0)], Trap::IntegerDivideByZero);
    expect_trap(build, "div", &[Value::I32(i32::MIN), Value::I32(-1)], Trap::IntegerOverflow);
    expect_both(build, "div", &[Value::I32(-7), Value::I32(2)], Value::I32(-3));
}

#[test]
fn float_to_int_conversions() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::F64], vec![ValType::I32]), |f| {
            f.local_get(0).op(I::I32TruncF64S);
        });
        b.export_func("trunc", f);
        b
    };
    expect_both(build, "trunc", &[Value::F64(-3.99)], Value::I32(-3));
    expect_trap(build, "trunc", &[Value::F64(f64::NAN)], Trap::InvalidConversionToInteger);
    expect_trap(build, "trunc", &[Value::F64(3e10)], Trap::IntegerOverflow);
}

#[test]
fn memory_grow_and_bounds() {
    let build = || {
        let mut b = ModuleBuilder::new();
        b.memory(1, Some(2));
        let f = b.func(FuncType::new(vec![], vec![ValType::I32]), |f| {
            // grow(1) returns old size 1; grow(5) fails with -1; sum = 0.
            f.i32_const(1).op(I::MemoryGrow);
            f.i32_const(5).op(I::MemoryGrow);
            f.op(I::I32Add);
        });
        b.export_func("grow", f);
        let oob = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.local_get(0).i32_load(0);
        });
        b.export_func("load", oob);
        b
    };
    expect_both(build, "grow", &[], Value::I32(0));
    expect_trap(build, "load", &[Value::I32(70 << 10)], Trap::MemoryOutOfBounds);
    expect_both(build, "load", &[Value::I32(0)], Value::I32(0));
}

#[test]
fn globals_and_start_function() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let g = b.global(ValType::I64, true, memwasm::wasm_core::module::ConstExpr::I64(5));
        let init = b.func(FuncType::new(vec![], vec![]), |f| {
            f.global_get(g).op(I::I64Const(37)).op(I::I64Add).global_set(g);
        });
        b.start(init);
        let read = b.func(FuncType::new(vec![], vec![ValType::I64]), |f| {
            f.global_get(g);
        });
        b.export_func("read", read);
        b
    };
    expect_both(build, "read", &[], Value::I64(42));
}

#[test]
fn block_results_flow_through_branches() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            f.block(BlockType::Value(ValType::I32), |f| {
                // Either branch carries an i32 out of the block.
                f.i32_const(111);
                f.local_get(0).br_if(0);
                f.drop_();
                f.i32_const(222);
            });
        });
        b.export_func("pick", f);
        b
    };
    expect_both(build, "pick", &[Value::I32(1)], Value::I32(111));
    expect_both(build, "pick", &[Value::I32(0)], Value::I32(222));
}

#[test]
fn loop_branch_carries_params_to_loop_head() {
    // A loop with a block-type from the type section (params via Func).
    let build = || {
        let mut b = ModuleBuilder::new();
        // Countdown using a loop whose label is branched to with br_if.
        let f = b.func(FuncType::new(vec![ValType::I32], vec![ValType::I32]), |f| {
            let sum = f.local(ValType::I32);
            f.block(BlockType::Empty, |f| {
                f.loop_(BlockType::Empty, |f| {
                    f.local_get(0).op(I::I32Eqz).br_if(1);
                    f.local_get(sum).local_get(0).op(I::I32Add).local_set(sum);
                    f.local_get(0).i32_const(1).op(I::I32Sub).local_set(0);
                    f.br(0);
                });
            });
            f.local_get(sum);
        });
        b.export_func("sum", f);
        b
    };
    expect_both(build, "sum", &[Value::I32(1000)], Value::I32(500500));
}

#[test]
fn nan_propagation_bitpatterns_agree() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::F64, ValType::F64], vec![ValType::I64]), |f| {
            f.local_get(0).local_get(1).op(I::F64Min).op(I::I64ReinterpretF64);
        });
        b.export_func("minbits", f);
        b
    };
    let [a, b] = run_both(build, "minbits", &[Value::F64(f64::NAN), Value::F64(1.0)]);
    assert_eq!(a, b, "tiers agree on NaN bit patterns");
}

#[test]
fn select_and_shift_semantics() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]), |f| {
            // select(a << 33, a >> 1, cond=b)
            f.local_get(0).i32_const(33).op(I::I32Shl);
            f.local_get(0).i32_const(1).op(I::I32ShrU);
            f.local_get(1);
            f.op(I::Select);
        });
        b.export_func("f", f);
        b
    };
    // Shift count masked: 1 << 33 == 2.
    expect_both(build, "f", &[Value::I32(1), Value::I32(1)], Value::I32(2));
    expect_both(build, "f", &[Value::I32(8), Value::I32(0)], Value::I32(4));
}

#[test]
fn call_indirect_type_mismatch_traps() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let sig_i32 = FuncType::new(vec![], vec![ValType::I32]);
        let sig_i64 = FuncType::new(vec![], vec![ValType::I64]);
        let f_i64 = b.func(sig_i64, |f| {
            f.op(I::I64Const(1));
        });
        b.table(1, Some(1));
        b.elem(0, vec![f_i64]);
        let sig_i32_idx_holder = sig_i32.clone();
        let caller = b.func(sig_i32, move |f| {
            let _ = &sig_i32_idx_holder;
            // type index 0 is () -> i64... depends on interning order; use
            // call_indirect with the *other* signature's type idx.
            f.i32_const(0).call_indirect(1);
        });
        b.export_func("call", caller);
        b
    };
    // Type index 1 is () -> (i32) (interned second); the table holds an
    // () -> (i64) function: mismatch.
    expect_trap(build, "call", &[], Trap::IndirectCallTypeMismatch);
}

#[test]
fn fuel_limits_agree() {
    let build = || {
        let mut b = ModuleBuilder::new();
        let f = b.func(FuncType::new(vec![], vec![]), |f| {
            f.loop_(BlockType::Empty, |f| {
                f.br(0);
            });
        });
        b.export_func("spin", f);
        b
    };
    for tier in [ExecTier::InPlace, ExecTier::Lowered] {
        let module = Arc::new(build().build());
        let mut inst = Instance::instantiate(
            module,
            Imports::new(),
            InstanceConfig { tier, fuel: Some(1_000), ..Default::default() },
        )
        .unwrap();
        assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel), "{tier:?}");
    }
}
